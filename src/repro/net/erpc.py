"""eRPC-style asynchronous RPC over the simulated fabric (§II-D, §VII-A).

The paper builds its 2PC on eRPC with a DPDK transport: userspace
polling, no syscalls on the data path, message buffers in (untrusted)
host hugepages.  This module reproduces those semantics:

* :meth:`ErpcEndpoint.enqueue_request` allocates a message buffer from a
  host-memory mempool, enqueues the request and returns immediately with
  a *continuation event* — matching eRPC's ``enqueue_request`` +
  continuation-function model (Figure 2: "TxBurst and yield", "poll for
  replies and/or yield");
* per-frame NIC/driver cost is charged instead of syscall cost (the
  kernel-bypass win), and when running under SCONE the message buffers
  deliberately live in host memory so no EPC paging is triggered — the
  design §VII-A calls out;
* request handlers run as freshly spawned fibers on the destination node
  (``ExecuteTxnReqHandler`` in Figure 2).

The event-based continuation is exactly how the coordinator batches
requests to many participants before yielding.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Generator, Optional, Tuple

from ..memory.allocator import MempoolAllocator
from ..sim.core import Event, Simulator
from ..tee.runtime import NodeRuntime
from .simnet import Fabric, Frame, Nic

__all__ = ["ErpcEndpoint", "RpcReply"]

# A request handler receives (payload, src_address) and returns the reply
# payload and its size in bytes: both via a generator so it can do work.
Handler = Callable[[Any, str], Generator[Event, Any, Tuple[Any, int]]]

#: eRPC per-message header bytes on the wire (approximation of eRPC's
#: packet header; constant across all systems so it does not skew ratios).
HEADER_BYTES = 16


class RpcReply:
    """Reply payload + size delivered to a request's continuation."""

    __slots__ = ("payload", "nbytes", "src")

    def __init__(self, payload: Any, nbytes: int, src: str):
        self.payload = payload
        self.nbytes = nbytes
        self.src = src


class ErpcEndpoint:
    """One node's RPC engine bound to a NIC."""

    def __init__(
        self,
        runtime: NodeRuntime,
        fabric: Fabric,
        nic: Nic,
        msgbuf_pool: Optional[MempoolAllocator] = None,
    ):
        self.runtime = runtime
        self.sim: Simulator = runtime.sim
        self.fabric = fabric
        self.nic = nic
        # §VII-A: "place all message buffers in the host memory (in
        # hugepages of 2 MiB), thus reducing the EPC pressure".
        self.msgbuf_pool = msgbuf_pool or MempoolAllocator(
            runtime.host_memory, heaps=runtime.config.cores_per_node
        )
        self._handlers: Dict[int, Handler] = {}
        self._pending: Dict[int, Event] = {}
        self._req_seq = itertools.count(1)
        self.requests_sent = 0
        self.requests_served = 0
        self._rx_running = False

    # -- wiring -------------------------------------------------------------
    def register_handler(self, req_type: int, handler: Handler) -> None:
        """Install the request handler invoked for ``req_type`` messages."""
        self._handlers[req_type] = handler
        self.start()

    def start(self) -> None:
        """Start the polling loop (idempotent)."""
        if not self._rx_running:
            self._rx_running = True
            self.sim.process(self._rx_loop(), name="erpc-rx@%s" % self.nic.address)

    # -- client side -----------------------------------------------------------
    def enqueue_request(
        self, dst: str, req_type: int, payload: Any, nbytes: int
    ) -> Event:
        """Enqueue a request; the returned event fires with an :class:`RpcReply`.

        Mirrors Figure 2 steps 1–2: allocate message buffers, enqueue, and
        let the caller yield/poll.  The message buffer stays allocated
        until the reply arrives (step 3's "FreeMsgBuffers").
        """
        self.start()
        req_id = next(self._req_seq)
        continuation = self.sim.event()
        self._pending[req_id] = continuation
        self.requests_sent += 1
        self.sim.process(
            self._send(dst, req_type, payload, nbytes, req_id, is_request=True),
            name="erpc-tx@%s" % self.nic.address,
        )
        return continuation

    def call(
        self, dst: str, req_type: int, payload: Any, nbytes: int
    ) -> Generator[Event, Any, RpcReply]:
        """Synchronous-style helper: enqueue and wait for the reply."""
        reply = yield self.enqueue_request(dst, req_type, payload, nbytes)
        return reply

    # -- data path ----------------------------------------------------------------
    def _tx_cpu_cost(self, wire_bytes: int) -> float:
        """Userspace driver cost: per-frame poll/burst work plus the copy."""
        frames = self.fabric.frames_for(wire_bytes)
        costs = self.runtime.costs
        return frames * costs.nic_frame_cost + wire_bytes * costs.copy_per_byte

    def _send(
        self,
        dst: str,
        req_type: int,
        payload: Any,
        nbytes: int,
        req_id: int,
        is_request: bool,
    ):
        wire_bytes = nbytes + HEADER_BYTES
        msgbuf = self.msgbuf_pool.alloc(max(wire_bytes, 1))
        # Message buffers are host memory: no enclave paging, but under
        # SCONE the enclave stages the payload across the boundary.
        if self.runtime.profile.in_enclave:
            yield from self.runtime.msgbuf_shield(wire_bytes)
        yield from self.runtime.compute(self._tx_cpu_cost(wire_bytes))
        frame = Frame(
            src=self.nic.address,
            dst=dst,
            wire_bytes=wire_bytes,
            payload=payload,
            kind="erpc",
            meta={
                "req_id": req_id,
                "req_type": req_type,
                "is_request": is_request,
                "nbytes": nbytes,
            },
        )
        try:
            yield from self.nic.transmit(frame)
        finally:
            msgbuf.release()

    def _rx_loop(self):
        """The polling loop: RxBurst, dispatch, repeat (Figure 2 step 4).

        Per-message processing runs in a spawned fiber so that, like
        real eRPC with multiple server threads, message handling can
        spread across the node's cores instead of serializing behind
        one event loop.
        """
        while True:
            frame = yield self.nic.receive()
            self.sim.process(
                self._dispatch(frame), name="erpc-rx@%s" % self.nic.address
            )

    def _dispatch(self, frame: Frame):
        if self.runtime.profile.in_enclave:
            yield from self.runtime.msgbuf_shield(frame.wire_bytes)
        yield from self.runtime.compute(self._tx_cpu_cost(frame.wire_bytes))
        meta = frame.meta
        if meta.get("is_request"):
            yield from self._serve(frame)
        else:
            continuation = self._pending.pop(meta.get("req_id"), None)
            if continuation is not None and not continuation.triggered:
                continuation.succeed(
                    RpcReply(frame.payload, meta.get("nbytes", 0), frame.src)
                )
            # else: stale/duplicated response — dropped, at-most-once.

    def _serve(self, frame: Frame):
        """Run the registered handler and enqueue the response."""
        meta = frame.meta
        handler = self._handlers.get(meta["req_type"])
        if handler is None:
            return  # unknown request type: ignore (hardened endpoint)
        self.requests_served += 1
        reply_payload, reply_bytes = yield from handler(frame.payload, frame.src)
        if reply_payload is None:
            return  # handler chose not to respond (e.g. replayed request)
        yield from self._send(
            frame.src,
            meta["req_type"],
            reply_payload,
            reply_bytes,
            meta["req_id"],
            is_request=False,
        )
