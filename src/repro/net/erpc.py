"""eRPC-style asynchronous RPC over the simulated fabric (§II-D, §VII-A).

The paper builds its 2PC on eRPC with a DPDK transport: userspace
polling, no syscalls on the data path, message buffers in (untrusted)
host hugepages.  This module reproduces those semantics:

* :meth:`ErpcEndpoint.enqueue_request` allocates a message buffer from a
  host-memory mempool, enqueues the request and returns immediately with
  a *continuation event* — matching eRPC's ``enqueue_request`` +
  continuation-function model (Figure 2: "TxBurst and yield", "poll for
  replies and/or yield");
* per-frame NIC/driver cost is charged instead of syscall cost (the
  kernel-bypass win), and when running under SCONE the message buffers
  deliberately live in host memory so no EPC paging is triggered — the
  design §VII-A calls out;
* request handlers run as freshly spawned fibers on the destination node
  (``ExecuteTxnReqHandler`` in Figure 2);
* **transport batching** (``net_batching``): concurrent messages to the
  same destination are coalesced per TX queue during a short doorbell
  window (eRPC's TxBurst), so a 2PC fan-out storm or a counter echo
  round pays one header, one per-frame NIC charge and one propagation
  per destination instead of one per message.  The RX side unbatches
  and dispatches each sub-message as its own fiber.

The event-based continuation is exactly how the coordinator batches
requests to many participants before yielding.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any, Callable, Deque, Dict, Generator, List, Optional, Set, Tuple

from ..errors import NetworkError
from ..memory.allocator import MempoolAllocator
from ..sim.core import Event, Simulator
from ..tee.runtime import NodeRuntime
from .simnet import Fabric, Frame, Nic

__all__ = ["ErpcEndpoint", "RpcReply", "BATCH_OCCUPANCY_BUCKETS"]

# A request handler receives (payload, src_address) and returns the reply
# payload and its size in bytes: both via a generator so it can do work.
Handler = Callable[[Any, str], Generator[Event, Any, Tuple[Any, int]]]

#: eRPC per-message header bytes on the wire (approximation of eRPC's
#: packet header; constant across all systems so it does not skew ratios).
#: A coalesced batch carries ONE header regardless of how many
#: sub-messages it holds — that is part of the batching win.
HEADER_BYTES = 16

#: bucket edges for the batch-occupancy histogram (messages per frame).
BATCH_OCCUPANCY_BUCKETS = (1, 2, 4, 8, 16, 32, 64)


class RpcReply:
    """Reply payload + size delivered to a request's continuation."""

    __slots__ = ("payload", "nbytes", "src")

    def __init__(self, payload: Any, nbytes: int, src: str):
        self.payload = payload
        self.nbytes = nbytes
        self.src = src


class _SubMsg:
    """One message queued for coalescing into a batch frame."""

    __slots__ = ("req_type", "payload", "nbytes", "req_id")

    def __init__(self, req_type: int, payload: Any, nbytes: int, req_id: int):
        self.req_type = req_type
        self.payload = payload
        self.nbytes = nbytes
        self.req_id = req_id

    def meta(self) -> Dict[str, Any]:
        return {
            "req_id": self.req_id,
            "req_type": self.req_type,
            "nbytes": self.nbytes,
        }


class ErpcEndpoint:
    """One node's RPC engine bound to a NIC."""

    def __init__(
        self,
        runtime: NodeRuntime,
        fabric: Fabric,
        nic: Nic,
        msgbuf_pool: Optional[MempoolAllocator] = None,
    ):
        self.runtime = runtime
        self.sim: Simulator = runtime.sim
        self.fabric = fabric
        self.nic = nic
        # §VII-A: "place all message buffers in the host memory (in
        # hugepages of 2 MiB), thus reducing the EPC pressure".
        self.msgbuf_pool = msgbuf_pool or MempoolAllocator(
            runtime.host_memory, heaps=runtime.config.cores_per_node
        )
        self._handlers: Dict[int, Handler] = {}
        #: req_id -> (destination address, continuation event).  The
        #: destination is kept so continuations can be failed fast when
        #: that destination's NIC detaches (node crash).
        self._pending: Dict[int, Tuple[str, Event]] = {}
        self._req_seq = itertools.count(1)
        self.requests_sent = 0
        self.requests_served = 0
        self._rx_running = False
        # -- transport batching -------------------------------------------
        config = runtime.config
        self.batching = bool(getattr(config, "net_batching", False))
        self.batch_window = getattr(config, "net_tx_batch_window", 0.0)
        self.batch_max = max(1, getattr(config, "net_tx_batch_max", 1))
        #: optional secure batch codec (installed by SecureRpc): seals a
        #: whole batch in one AEAD pass and unseals/replay-checks it on
        #: receive.  Without a codec the batch travels as a payload list.
        self.batch_codec: Optional[Any] = None
        #: per-(destination, direction) coalescing queues.  Requests and
        #: responses are queued separately so a batch frame carries one
        #: truthful top-level ``is_request`` flag (adversary rules and
        #: trace predicates key on it).
        self._tx_queues: Dict[Tuple[str, bool], Deque[_SubMsg]] = {}
        self._flushers: Set[Tuple[str, bool]] = set()
        self.batches_sent = 0
        metrics = runtime.metrics
        self._occupancy_hist = metrics.histogram(
            "net.batch_occupancy", BATCH_OCCUPANCY_BUCKETS
        )
        self._frames_saved_counter = metrics.counter("net.frames_saved")
        self._batches_counter = metrics.counter("net.batches_sent")
        fabric.on_detach(self._on_peer_detach)

    # -- wiring -------------------------------------------------------------
    def register_handler(self, req_type: int, handler: Handler) -> None:
        """Install the request handler invoked for ``req_type`` messages."""
        self._handlers[req_type] = handler
        self.start()

    def start(self) -> None:
        """Start the polling loop (idempotent)."""
        if not self._rx_running:
            self._rx_running = True
            self.sim.process(self._rx_loop(), name="erpc-rx@%s" % self.nic.address)

    # -- client side -----------------------------------------------------------
    def enqueue_request(
        self, dst: str, req_type: int, payload: Any, nbytes: int
    ) -> Event:
        """Enqueue a request; the returned event fires with an :class:`RpcReply`.

        Mirrors Figure 2 steps 1–2: allocate message buffers, enqueue, and
        let the caller yield/poll.  The message buffer stays allocated
        until the reply arrives (step 3's "FreeMsgBuffers").
        """
        self.start()
        req_id = next(self._req_seq)
        continuation = self.sim.event()
        self._pending[req_id] = (dst, continuation)
        self.requests_sent += 1
        sub = _SubMsg(req_type, payload, nbytes, req_id)
        if self.batching:
            self._enqueue_tx(dst, sub, is_request=True)
        else:
            self.sim.process(
                self._send(dst, req_type, payload, nbytes, req_id, is_request=True),
                name="erpc-tx@%s" % self.nic.address,
            )
        return continuation

    def call(
        self, dst: str, req_type: int, payload: Any, nbytes: int
    ) -> Generator[Event, Any, RpcReply]:
        """Synchronous-style helper: enqueue and wait for the reply."""
        reply = yield self.enqueue_request(dst, req_type, payload, nbytes)
        return reply

    # -- crash handling ---------------------------------------------------------
    def _on_peer_detach(self, address: str) -> None:
        """Fail continuations of requests whose destination just crashed.

        Without this, a coordinator fiber waiting on a crashed
        participant's reply blocks forever and its ``_pending`` entry
        (plus the associated msgbuf) leaks.  Our *own* address detaching
        means this node crashed: its fibers are zombies that must park,
        not be woken with errors.
        """
        if address == self.nic.address:
            return
        stale = [
            req_id
            for req_id, (dst, _) in self._pending.items()
            if dst == address
        ]
        for req_id in stale:
            _, continuation = self._pending.pop(req_id)
            self._fail_continuation(
                continuation, NetworkError("destination %r crashed" % address)
            )

    @staticmethod
    def _fail_continuation(continuation: Event, exc: BaseException) -> None:
        if continuation.triggered:
            return
        continuation.fail(exc)
        # Defuse so an un-awaited continuation (fire-and-forget caller)
        # does not crash the simulator; an awaiting fiber still gets the
        # exception thrown into it.
        continuation.defuse()

    def _fail_subs(self, subs: List[Dict[str, Any]], exc: BaseException) -> None:
        for sub_meta in subs:
            entry = self._pending.pop(sub_meta.get("req_id"), None)
            if entry is not None:
                self._fail_continuation(entry[1], exc)

    # -- data path ----------------------------------------------------------------
    def _tx_cpu_cost(self, wire_bytes: int) -> float:
        """Userspace driver cost: per-frame poll/burst work plus the copy."""
        frames = self.fabric.frames_for(wire_bytes)
        costs = self.runtime.costs
        return frames * costs.nic_frame_cost + wire_bytes * costs.copy_per_byte

    # -- TX batching --------------------------------------------------------------
    def _enqueue_tx(self, dst: str, sub: _SubMsg, is_request: bool) -> None:
        """Append to the destination's TX queue; arm its flusher fiber."""
        key = (dst, is_request)
        queue = self._tx_queues.get(key)
        if queue is None:
            queue = self._tx_queues[key] = deque()
            # Per-destination depth gauge, sampled only at snapshot time
            # (a probe costs nothing on the enqueue path).
            self.runtime.metrics.probe(
                "net.txq.depth.%s.%s" % (dst, "req" if is_request else "rsp"),
                lambda q=queue: len(q),
            )
        queue.append(sub)
        if key not in self._flushers:
            self._flushers.add(key)
            self.sim.process(
                self._flush_loop(dst, is_request),
                name="erpc-txq@%s->%s" % (self.nic.address, dst),
            )

    def _flush_loop(self, dst: str, is_request: bool):
        """Drain one destination's TX queue, one batch frame at a time.

        The doorbell window lets concurrent senders join the batch; a
        full batch (``net_tx_batch_max``) is sealed immediately.
        """
        key = (dst, is_request)
        queue = self._tx_queues[key]
        try:
            while queue:
                if self.batch_window > 0.0 and len(queue) < self.batch_max:
                    yield self.sim.timeout(self.batch_window)
                batch: List[_SubMsg] = []
                while queue and len(batch) < self.batch_max:
                    batch.append(queue.popleft())
                yield from self._transmit_batch(dst, batch, is_request)
        finally:
            self._flushers.discard(key)

    def _transmit_batch(self, dst: str, batch: List[_SubMsg], is_request: bool):
        """Seal (optionally), charge and transmit one coalesced frame."""
        meta_extra: Dict[str, Any] = {}
        if self.batch_codec is not None:
            payload, payload_bytes, meta_extra = yield from self.batch_codec.encode_batch(
                [sub.payload for sub in batch]
            )
        else:
            payload = [sub.payload for sub in batch]
            payload_bytes = sum(sub.nbytes for sub in batch)
        wire_bytes = payload_bytes + HEADER_BYTES
        msgbuf = self.msgbuf_pool.alloc(max(wire_bytes, 1))
        try:
            if self.runtime.profile.in_enclave:
                yield from self.runtime.msgbuf_shield(wire_bytes)
            yield from self.runtime.compute(self._tx_cpu_cost(wire_bytes))
            frame = Frame(
                src=self.nic.address,
                dst=dst,
                wire_bytes=wire_bytes,
                payload=payload,
                kind="erpc",
                meta=dict(
                    meta_extra,
                    batch=[sub.meta() for sub in batch],
                    count=len(batch),
                    is_request=is_request,
                    req_type=batch[0].req_type,
                ),
            )
            self.batches_sent += 1
            self._batches_counter.inc()
            self._occupancy_hist.observe(len(batch))
            baseline_frames = sum(
                self.fabric.frames_for(sub.nbytes + HEADER_BYTES) for sub in batch
            )
            saved = baseline_frames - self.fabric.frames_for(wire_bytes)
            if saved > 0:
                self._frames_saved_counter.inc(saved)
            yield from self.nic.transmit(frame)
        finally:
            msgbuf.release()
        if is_request and dst not in self.fabric._nics:
            # The destination is already gone: the delivery fiber will
            # drop the frame, so fail the batch's continuations now
            # instead of letting retry loops leak pending entries.
            self._fail_subs(
                [sub.meta() for sub in batch],
                NetworkError("destination %r unreachable" % dst),
            )

    # -- legacy unbatched TX ------------------------------------------------------
    def _send(
        self,
        dst: str,
        req_type: int,
        payload: Any,
        nbytes: int,
        req_id: int,
        is_request: bool,
    ):
        wire_bytes = nbytes + HEADER_BYTES
        msgbuf = self.msgbuf_pool.alloc(max(wire_bytes, 1))
        # Message buffers are host memory: no enclave paging, but under
        # SCONE the enclave stages the payload across the boundary.
        if self.runtime.profile.in_enclave:
            yield from self.runtime.msgbuf_shield(wire_bytes)
        yield from self.runtime.compute(self._tx_cpu_cost(wire_bytes))
        frame = Frame(
            src=self.nic.address,
            dst=dst,
            wire_bytes=wire_bytes,
            payload=payload,
            kind="erpc",
            meta={
                "req_id": req_id,
                "req_type": req_type,
                "is_request": is_request,
                "nbytes": nbytes,
            },
        )
        try:
            yield from self.nic.transmit(frame)
        finally:
            msgbuf.release()
        if is_request and dst not in self.fabric._nics:
            entry = self._pending.pop(req_id, None)
            if entry is not None:
                self._fail_continuation(
                    entry[1], NetworkError("destination %r unreachable" % dst)
                )

    # -- RX ----------------------------------------------------------------------
    def _rx_loop(self):
        """The polling loop: RxBurst, dispatch, repeat (Figure 2 step 4).

        Per-message processing runs in a spawned fiber so that, like
        real eRPC with multiple server threads, message handling can
        spread across the node's cores instead of serializing behind
        one event loop.
        """
        while True:
            frame = yield self.nic.receive()
            self.sim.process(
                self._dispatch(frame), name="erpc-rx@%s" % self.nic.address
            )

    def _dispatch(self, frame: Frame):
        if self.runtime.profile.in_enclave:
            yield from self.runtime.msgbuf_shield(frame.wire_bytes)
        yield from self.runtime.compute(self._tx_cpu_cost(frame.wire_bytes))
        meta = frame.meta
        subs = meta.get("batch")
        if subs is None:
            # Unbatched frame (legacy path / foreign endpoints).
            if meta.get("is_request"):
                yield from self._serve_one(
                    meta["req_type"], frame.payload, frame.src, meta["req_id"]
                )
            else:
                self._complete(
                    meta.get("req_id"), frame.payload, meta.get("nbytes", 0),
                    frame.src,
                )
            return
        is_request = meta.get("is_request", False)
        if self.batch_codec is not None:
            try:
                parts = yield from self.batch_codec.decode_batch(
                    frame.payload, frame.src, meta
                )
            except Exception as exc:  # noqa: BLE001 - modelled tampering
                if not is_request:
                    # A corrupted *response* batch fails every waiting
                    # continuation (the senders see the integrity error);
                    # a corrupted request surfaces at the receiving node.
                    self._fail_subs(subs, exc)
                    return
                raise
            if parts is None:
                return  # replayed batch: rejected atomically, as a unit
        else:
            parts = frame.payload
        for sub_meta, part in zip(subs, parts):
            if is_request:
                self.sim.process(
                    self._serve_one(
                        sub_meta["req_type"], part, frame.src, sub_meta["req_id"]
                    ),
                    name="erpc-rx@%s" % self.nic.address,
                )
            else:
                self._complete(
                    sub_meta["req_id"], part, sub_meta.get("nbytes", 0), frame.src
                )

    def _complete(
        self, req_id: Any, payload: Any, nbytes: int, src: str
    ) -> None:
        entry = self._pending.pop(req_id, None)
        if entry is not None and not entry[1].triggered:
            entry[1].succeed(RpcReply(payload, nbytes, src))
        # else: stale/duplicated response — dropped, at-most-once.

    def _serve_one(self, req_type: int, payload: Any, src: str, req_id: int):
        """Run the registered handler and enqueue the response."""
        handler = self._handlers.get(req_type)
        if handler is None:
            return  # unknown request type: ignore (hardened endpoint)
        self.requests_served += 1
        reply_payload, reply_bytes = yield from handler(payload, src)
        if reply_payload is None:
            return  # handler chose not to respond (e.g. replayed request)
        if self.batching:
            self._enqueue_tx(
                src,
                _SubMsg(req_type, reply_payload, reply_bytes, req_id),
                is_request=False,
            )
        else:
            yield from self._send(
                src, req_type, reply_payload, reply_bytes, req_id,
                is_request=False,
            )
