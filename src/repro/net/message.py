"""Treaty's secure message format (§VII-A).

Wire layout: ``IV (12 B) || padding (4 B) || metadata (80 B) || data || MAC (16 B)``.
Metadata and data are encrypted; IV and MAC are in the clear — flipping
either simply fails the integrity check.  The metadata carries the
coordinator node id, the transaction id (monotonically incremented at the
coordinator) and a per-request operation id; the ``(node, txn, op)``
triple uniquely identifies an operation cluster-wide and is how receivers
enforce at-most-once execution against duplicated/replayed packets.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from ..crypto.aead import IV_BYTES, MAC_BYTES, Aead
from ..errors import IntegrityError, ReplayError

__all__ = [
    "MsgType",
    "TxMessage",
    "ReplayGuard",
    "METADATA_BYTES",
    "PAD_BYTES",
    "wire_size",
    "pack_parts",
    "unpack_parts",
    "peek_trace",
    "seal_batch",
    "unseal_batch",
    "batch_wire_size",
]

PAD_BYTES = 4  # §VII-A: 4 B payload for memory alignment
METADATA_BYTES = 80  # §VII-A: 80 B Tx metadata

_AAD = b"treaty-msg-v1"
# node id (8) + txn id (8) + op id (8) + msg type (4) + body length (4)
# + trace context + reserved padding up to 80 bytes.
_META_STRUCT = struct.Struct("<QQQiI")
# Trace context (rides the formerly reserved metadata bytes, so the wire
# size is unchanged): 16 B trace id (the transaction's GlobalTxnId
# encoding; all-zero = no context) + parent span id (8 B) + origin node
# id (8 B).  Sealed with the rest of the metadata, so the causal chain a
# receiver adopts is covered by the frame's MAC.
_TRACE_STRUCT = struct.Struct("<16sQQ")
_TRACE_OFFSET = _META_STRUCT.size
_NO_TRACE = b"\x00" * 16
_META_RESERVED = METADATA_BYTES - _META_STRUCT.size - _TRACE_STRUCT.size


class MsgType:
    """Request/response kinds carried by Treaty messages."""

    TXN_READ = 1
    TXN_WRITE = 2
    TXN_PREPARE = 3
    TXN_COMMIT = 4
    TXN_ABORT = 5
    ACK = 6
    FAIL = 7
    COUNTER_UPDATE = 8
    COUNTER_ECHO = 9
    COUNTER_CONFIRM = 10
    CLIENT_REQUEST = 11
    CLIENT_REPLY = 12
    RECOVERY_QUERY = 13
    RECOVERY_REPLY = 14
    TXN_RESOLVE = 15
    TXN_RESOLVE_REPLY = 16
    TXN_SCAN = 17
    #: a recovered coordinator announces its new boot epoch; peers abort
    #: its pre-epoch transactions that never reached PREPARE.
    TXN_FENCE = 18
    #: commit_replication: the coordinator replicates its commit/abort
    #: decision record to the participant group before answering the
    #: client; a quorum of ACKs makes the decision durable.
    DECISION_RECORD = 19
    #: commit_replication: a timed-out participant asks its peers what
    #: decision (if any) they hold for an in-doubt transaction.
    DECISION_QUERY = 20
    #: occ_distributed: stateless versioned read — returns (found,
    #: value, seq) without creating a participant-local transaction or
    #: taking any lock.
    TXN_READ_OCC = 21
    #: occ_distributed: stateless read-committed range scan.
    TXN_SCAN_OCC = 22

    NAMES = {
        1: "TXN_READ",
        2: "TXN_WRITE",
        3: "TXN_PREPARE",
        4: "TXN_COMMIT",
        5: "TXN_ABORT",
        6: "ACK",
        7: "FAIL",
        8: "COUNTER_UPDATE",
        9: "COUNTER_ECHO",
        10: "COUNTER_CONFIRM",
        11: "CLIENT_REQUEST",
        12: "CLIENT_REPLY",
        13: "RECOVERY_QUERY",
        14: "RECOVERY_REPLY",
        15: "TXN_RESOLVE",
        16: "TXN_RESOLVE_REPLY",
        17: "TXN_SCAN",
        18: "TXN_FENCE",
        19: "DECISION_RECORD",
        20: "DECISION_QUERY",
        21: "TXN_READ_OCC",
        22: "TXN_SCAN_OCC",
    }


@dataclass(frozen=True)
class TxMessage:
    """One transaction-protocol message before sealing."""

    msg_type: int
    node_id: int  # coordinator node's id (8 B)
    txn_id: int  # coordinator-local monotonic transaction id (8 B)
    op_id: int  # unique per request within the transaction (8 B)
    body: bytes = b""
    #: trace context (32 B of the metadata's reserved region; excluded
    #: from equality so replay/identity semantics are unchanged).
    trace: Optional[str] = field(default=None, compare=False)
    trace_parent: int = field(default=0, compare=False)
    trace_origin: int = field(default=0, compare=False)

    # -- identity --------------------------------------------------------
    @property
    def operation_key(self) -> Tuple[int, int, int]:
        """The unique (node, txn, op) triple used for at-most-once checks."""
        return (self.node_id, self.txn_id, self.op_id)

    # -- encoding ---------------------------------------------------------
    def encode(self) -> bytes:
        """Serialize metadata + body (the to-be-encrypted plaintext)."""
        meta = _META_STRUCT.pack(
            self.node_id, self.txn_id, self.op_id, self.msg_type, len(self.body)
        )
        raw_trace = bytes.fromhex(self.trace) if self.trace else _NO_TRACE
        if len(raw_trace) != 16:
            raise IntegrityError("trace id must encode to 16 bytes")
        trace_blob = _TRACE_STRUCT.pack(
            raw_trace, self.trace_parent, self.trace_origin
        )
        return meta + trace_blob + b"\x00" * _META_RESERVED + self.body

    @classmethod
    def decode(cls, plaintext: bytes) -> "TxMessage":
        if len(plaintext) < METADATA_BYTES:
            raise IntegrityError("message shorter than its metadata")
        node_id, txn_id, op_id, msg_type, body_len = _META_STRUCT.unpack_from(
            plaintext
        )
        raw_trace, trace_parent, trace_origin = _TRACE_STRUCT.unpack_from(
            plaintext, _TRACE_OFFSET
        )
        body = plaintext[METADATA_BYTES:]
        if len(body) != body_len:
            raise IntegrityError("message body length mismatch")
        trace = raw_trace.hex() if raw_trace != _NO_TRACE else None
        return cls(msg_type, node_id, txn_id, op_id, body,
                   trace=trace, trace_parent=trace_parent,
                   trace_origin=trace_origin)

    # -- sealing -----------------------------------------------------------
    def seal(self, aead: Aead, iv: bytes) -> bytes:
        """Encrypt+authenticate into the full wire layout."""
        sealed = aead.seal(iv, self.encode(), aad=_AAD)
        # Insert the 4 B alignment pad after the IV, outside the MAC'd
        # region exactly as in the paper (it carries no information).
        return sealed[:IV_BYTES] + b"\x00" * PAD_BYTES + sealed[IV_BYTES:]

    @classmethod
    def unseal(cls, aead: Aead, wire: bytes) -> "TxMessage":
        if len(wire) < IV_BYTES + PAD_BYTES + MAC_BYTES:
            raise IntegrityError("sealed message too short")
        stripped = wire[:IV_BYTES] + wire[IV_BYTES + PAD_BYTES :]
        return cls.decode(aead.open(stripped, aad=_AAD))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = MsgType.NAMES.get(self.msg_type, str(self.msg_type))
        return "<TxMessage %s node=%d txn=%d op=%d body=%dB>" % (
            name,
            self.node_id,
            self.txn_id,
            self.op_id,
            len(self.body),
        )


def wire_size(body_len: int, encrypted: bool) -> int:
    """Bytes on the wire for a message with an ``body_len``-byte body."""
    plain = METADATA_BYTES + body_len
    if encrypted:
        return IV_BYTES + PAD_BYTES + plain + MAC_BYTES
    return plain


# -- batch framing (transport coalescing, §VII-A's eRPC substrate) ---------
#
# A coalesced batch concatenates length-prefixed sub-messages and — when
# encryption is on — seals the whole concatenation under ONE IV and ONE
# MAC: ``IV (12 B) || padding (4 B) || AEAD(u32 len || part, ...) || MAC``.
# The batch AAD binds the sender and a per-sender batch sequence number so
# a replayed batch frame is rejected as a unit.

_PART_LEN = struct.Struct("<I")


def pack_parts(parts: Sequence[bytes]) -> bytes:
    """Length-prefix and concatenate sub-message payloads."""
    chunks = []
    for part in parts:
        chunks.append(_PART_LEN.pack(len(part)))
        chunks.append(part)
    return b"".join(chunks)


def unpack_parts(blob: bytes) -> List[bytes]:
    """Split a :func:`pack_parts` concatenation back into payloads."""
    parts: List[bytes] = []
    offset = 0
    total = len(blob)
    while offset < total:
        if offset + _PART_LEN.size > total:
            raise IntegrityError("batch part header truncated")
        (length,) = _PART_LEN.unpack_from(blob, offset)
        offset += _PART_LEN.size
        if offset + length > total:
            raise IntegrityError("batch part body truncated")
        parts.append(blob[offset : offset + length])
        offset += length
    return parts


def peek_trace(encoded: bytes) -> Optional[str]:
    """Read the trace id out of an encoded (plaintext) message, if any.

    Used by the batch codec to label a whole frame's AEAD span with the
    trace of its first context-carrying sub-message without paying a
    full decode.
    """
    if len(encoded) < _TRACE_OFFSET + _TRACE_STRUCT.size:
        return None
    raw = encoded[_TRACE_OFFSET : _TRACE_OFFSET + 16]
    return raw.hex() if raw != _NO_TRACE else None


def seal_batch(
    aead: Aead, iv: bytes, parts: Sequence[bytes], aad: bytes
) -> bytes:
    """One AEAD pass over a whole batch (single IV, single MAC)."""
    sealed = aead.seal(iv, pack_parts(parts), aad=aad)
    return sealed[:IV_BYTES] + b"\x00" * PAD_BYTES + sealed[IV_BYTES:]


def unseal_batch(aead: Aead, wire: bytes, aad: bytes) -> List[bytes]:
    """Verify/decrypt a sealed batch and split it into payloads."""
    if len(wire) < IV_BYTES + PAD_BYTES + MAC_BYTES:
        raise IntegrityError("sealed batch too short")
    stripped = wire[:IV_BYTES] + wire[IV_BYTES + PAD_BYTES :]
    return unpack_parts(aead.open(stripped, aad=aad))


def batch_wire_size(part_lens: Sequence[int], encrypted: bool) -> int:
    """Bytes on the wire for a batch of already-encoded payloads."""
    packed = sum(part_lens) + _PART_LEN.size * len(part_lens)
    if encrypted:
        return IV_BYTES + PAD_BYTES + packed + MAC_BYTES
    return packed


class ReplayGuard:
    """At-most-once filter over ``(node, txn, op)`` operation ids.

    The paper: "This unique tuple of the node's, Tx and operation ids
    ensures that an operation/Tx is not executed more than once."
    """

    def __init__(self):
        self._seen: Set[Tuple[int, int, int]] = set()
        self.rejected = 0

    def check(self, message: TxMessage) -> None:
        """Record the message; raise :class:`ReplayError` if seen before."""
        key = message.operation_key
        if key in self._seen:
            self.rejected += 1
            raise ReplayError(
                "duplicate operation %r (replayed or double-executed)" % (key,)
            )
        self._seen.add(key)

    def __len__(self) -> int:
        return len(self._seen)
