"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``info``   — print the environment profiles and cost-model constants.
* ``demo``   — run a few secure distributed transactions and print stats.
* ``ycsb``   — run a YCSB experiment (profile/read-mix/clients options).
* ``tpcc``   — run a TPC-C experiment.
* ``trace``  — run a workload with tracing on and write a Chrome trace;
  ``trace critical-path [txn]`` instead prints a transaction's
  critical-path latency breakdown (see docs/OBSERVABILITY.md).
* ``report`` — run a workload with the always-on flight recorder and
  print the timeline, incident, and tail-exemplar report.
* ``metrics``— export a workload run's metrics registry (``export
  --prom`` renders Prometheus text exposition).
* ``bench``  — durability-pipeline benchmarks: ``smoke`` (monitored
  full-pipeline run, the CI gate; ``--net-batch`` compares transport
  batching off vs on), ``sweep-window`` (group-commit window
  latency/throughput frontier), ``scale-out`` (cluster-size sweep
  under transport batching; see docs/NETWORK.md) and ``baseline``
  (write/check the BENCH_treaty.json performance baseline).
* ``attacks``— run the attack-detection demonstration.
* ``mc``     — model checker (see docs/MODELCHECK.md): ``mc explore``
  exhausts every distinguishable schedule of a small scope (crashes +
  network adversary) under the I1–I5 monitor; ``mc replay`` re-executes
  a saved counterexample bit-for-bit.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import List, Optional

from .config import PROFILES, ClusterConfig, TREATY_FULL
from .bench.harness import _attach_phase_breakdown
from .bench.metrics import MetricsCollector


def _add_profile_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile",
        default="Treaty w/ Enc w/ Stab",
        choices=sorted(PROFILES),
        help="environment profile (which bar of the paper's figures)",
    )


def cmd_info(args: argparse.Namespace) -> int:
    print("Environment profiles:")
    for name, profile in sorted(PROFILES.items()):
        print(
            "  %-24s runtime=%-6s encryption=%-5s stabilization=%s"
            % (name, profile.runtime, profile.encryption, profile.stabilization)
        )
    print("\nCost model (CostModel defaults):")
    costs = ClusterConfig().costs
    for field in dataclasses.fields(costs):
        print("  %-32s %s" % (field.name, getattr(costs, field.name)))
    print("\nObservability (repro.obs; see docs/OBSERVABILITY.md):")
    print("  trace categories   twopc stabilize storage net rpc crypto"
          " locks tee node counter")
    print("  enclave metrics    tee.transitions tee.page_faults")
    print("                     (per node, in `repro demo` and bench reports)")
    print("  phase histograms   twopc.prepare_s twopc.decision_s"
          " twopc.commit_s stabilize.wait_s locks.wait_s")
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    from .core import TreatyCluster

    profile = PROFILES[args.profile]
    cluster = TreatyCluster(profile=profile).start()
    session = cluster.session(cluster.client_machine())

    def workload():
        txn = session.begin()
        for i in range(args.keys):
            yield from txn.put(b"demo-%04d" % i, b"value-%d" % i)
        yield from txn.commit()
        check = session.begin()
        value = yield from check.get(b"demo-0000")
        yield from check.commit()
        return value

    start = cluster.sim.now
    value = cluster.run(workload())
    print("profile      :", profile.name)
    print("read back    :", value)
    print("elapsed (sim): %.2f ms" % ((cluster.sim.now - start) * 1e3))
    coordinator = cluster.nodes[0].coordinator
    print("2PC commits  :", coordinator.distributed_commits)
    print("aborts       :", coordinator.aborts)
    print("enclave      :")
    for node in cluster.nodes:
        stats = node.runtime.enclave.stats()
        print(
            "  %-8s transitions=%-6d page_faults=%-8.3f resident=%d B"
            % (node.name, stats["transitions"], stats["page_faults"],
               stats["resident_bytes"])
        )
    return 0


def cmd_ycsb(args: argparse.Namespace) -> int:
    from .core import TreatyCluster
    from .workloads import YcsbConfig, bulk_load, run_ycsb

    profile = PROFILES[args.profile]
    cluster = TreatyCluster(profile=profile).start()
    config = YcsbConfig(
        read_proportion=args.reads, num_keys=args.keys,
        distribution=args.distribution,
    )
    cluster.run(bulk_load(cluster, config), name="load")
    metrics = MetricsCollector(profile.name)
    run_ycsb(
        cluster, config, metrics,
        num_clients=args.clients, duration=args.duration,
        warmup=args.duration * 0.25,
    )
    _attach_phase_breakdown(metrics, cluster)
    _print_metrics(metrics)
    return 0


def cmd_tpcc(args: argparse.Namespace) -> int:
    from .core import TreatyCluster
    from .workloads import TpccScale, load_tpcc, run_tpcc, tpcc_partitioner

    profile = PROFILES[args.profile]
    scale = TpccScale(warehouses=args.warehouses)
    cluster = TreatyCluster(
        profile=profile, partitioner=tpcc_partitioner(3)
    ).start()
    cluster.run(load_tpcc(cluster, scale), name="load")
    metrics = MetricsCollector(profile.name)
    run_tpcc(
        cluster, scale, metrics,
        num_clients=args.clients, duration=args.duration,
        warmup=args.duration * 0.25,
    )
    _attach_phase_breakdown(metrics, cluster)
    _print_metrics(metrics)
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from .core import TreatyCluster
    from .obs import write_chrome_trace, write_jsonl

    if args.mode == "critical-path" and args.from_jsonl:
        import json

        with open(args.from_jsonl) as fp:
            records = [json.loads(line) for line in fp if line.strip()]
        return _trace_critical_path(records, args.txn)

    profile = PROFILES[args.profile]
    config = ClusterConfig(tracing=True, seed=args.seed)
    if args.workload == "tpcc":
        from .workloads import TpccScale, load_tpcc, run_tpcc, tpcc_partitioner

        scale = TpccScale(warehouses=3)
        cluster = TreatyCluster(
            profile=profile, config=config, partitioner=tpcc_partitioner(3)
        ).start()
        cluster.run(load_tpcc(cluster, scale), name="load")
        metrics = MetricsCollector(profile.name)
        run_tpcc(
            cluster, scale, metrics,
            num_clients=args.clients, duration=args.duration,
        )
    elif args.workload == "ycsb":
        from .workloads import YcsbConfig, bulk_load, run_ycsb

        ycsb = YcsbConfig(read_proportion=0.5, num_keys=1_000)
        cluster = TreatyCluster(profile=profile, config=config).start()
        cluster.run(bulk_load(cluster, ycsb), name="load")
        metrics = MetricsCollector(profile.name)
        run_ycsb(
            cluster, ycsb, metrics,
            num_clients=args.clients, duration=args.duration,
        )
    else:  # demo: a few multi-shard transactions plus a crash/recovery
        from .core import crash_and_recover

        cluster = TreatyCluster(profile=profile, config=config).start()

        def body():
            for round_num in range(4):
                txn = cluster.session(cluster.client_machine()).begin()
                for i in range(6):
                    yield from txn.put(
                        b"trace-%d-%04d" % (round_num, i), b"v%d" % i
                    )
                yield from txn.commit()
            yield from crash_and_recover(cluster, 1)

        cluster.run(body())

    records = cluster.obs.records()
    if args.mode == "critical-path":
        return _trace_critical_path(records, args.txn)
    write_chrome_trace(records, args.out)
    if args.jsonl:
        write_jsonl(records, args.jsonl)
    categories = sorted({rec["cat"] for rec in records})
    spans = sum(1 for rec in records if rec["type"] == "span")
    print("workload     :", args.workload)
    print("profile      :", profile.name)
    print("sim time     : %.1f ms" % (cluster.sim.now * 1e3))
    print("records      : %d (%d spans, %d events)"
          % (len(records), spans, len(records) - spans))
    print("categories   :", " ".join(categories))
    print("trace        :", args.out)
    if args.jsonl:
        print("jsonl        :", args.jsonl)
    print()
    print(cluster.obs.summary(title="registry snapshot"))
    return 0


def _run_observed_workload(
    workload: str,
    clients: int,
    duration: float,
    seed: int,
    window_s: float,
):
    """One workload run with the full observability stack on.

    Shared by ``repro report`` and ``repro metrics export``: flight
    recorder (ring-buffered tracer + tail exemplars), time series, and
    incident detection, on TREATY_FULL.  Returns the finished cluster
    with its time series flushed.
    """
    from .core import TreatyCluster

    config = ClusterConfig(
        seed=seed,
        flight_recorder=True,
        timeseries=True,
        timeseries_window_s=window_s,
        incidents=True,
        tail_warmup=8,
    )
    cluster = TreatyCluster(profile=TREATY_FULL, config=config).start()
    if workload == "ycsb":
        from .bench.metrics import MetricsCollector as Collector
        from .workloads import YcsbConfig, bulk_load, run_ycsb

        ycsb = YcsbConfig(read_proportion=0.5, num_keys=1_000)
        cluster.run(bulk_load(cluster, ycsb), name="load")
        run_ycsb(
            cluster, ycsb, Collector("report"),
            num_clients=clients, duration=duration,
        )
    else:  # demo: a few multi-shard transactions
        session = cluster.session(cluster.client_machine())

        def body():
            for round_num in range(16):
                txn = session.begin()
                for i in range(4):
                    yield from txn.put(
                        b"report-%d-%04d" % (round_num, i), b"v%d" % i
                    )
                yield from txn.commit()

        cluster.run(body())
    cluster.obs.timeseries.flush()
    return cluster


def cmd_report(args: argparse.Namespace) -> int:
    """Timeline + incidents + tail-exemplar report for one workload run."""
    from .bench.reporting import format_table

    cluster = _run_observed_workload(
        args.workload, args.clients, args.duration, args.seed,
        args.window * 1e-3,
    )
    obs = cluster.obs
    timeseries, recorder, incidents = obs.timeseries, obs.recorder, obs.incidents

    flight = recorder.summary()
    timeline = timeseries.summary()
    print("workload     :", args.workload)
    print("sim time     : %.1f ms" % (cluster.sim.now * 1e3))
    print("commits      : %d   (p50 %.3f ms, p%g %.3f ms)"
          % (flight["commits"], flight["p50_ms"],
             flight["tail_quantile"] * 100, flight["tail_ms"]))
    print("timeline     : %d windows of %.1f ms  (tps mean %.0f, peak %.0f,"
          " %d stalled)"
          % (timeline["windows"], timeseries.window_s * 1e3,
             timeline.get("tps_mean", 0.0), timeline.get("tps_peak", 0.0),
             timeline.get("stalled_windows", 0)))
    print("ring         : %d spans retained, %d evicted"
          % (len(obs.records()), flight["ring_evicted"]))
    print()

    active = [w for w in timeseries.windows
              if w["commits"] or w["aborts"] or w["frames_per_s"] > 0.0]
    shown = active[-24:]
    rows = [(
        "%d" % w["window"],
        "%.1f" % w["t0_ms"],
        "%d" % w["commits"],
        "%d" % w["aborts"],
        "%.0f" % w["tps"],
        "%.0f" % w["frames_per_s"],
        "%.0f" % w["seal_ops_per_s"],
        "%.3f" % w["lock_wait_p50_ms"],
        "%.2f" % w["group_commit_occupancy"],
    ) for w in shown]
    title = "timeline (last %d of %d active windows)" % (len(shown),
                                                         len(active))
    print(format_table(
        title,
        ("win", "t0 ms", "commit", "abort", "tps", "frames/s",
         "seals/s", "lock p50", "gc occ"),
        rows,
    ))
    print()

    incident_counts = incidents.counts()
    if incident_counts:
        incidents.link_exemplars()
        print("incidents    : "
              + "  ".join("%s=%d" % item
                          for item in sorted(incident_counts.items())))
        for incident in incidents.incidents[:12]:
            exemplar = incident.get("exemplar")
            suffix = (
                "  [exemplar %.3f ms, %s]"
                % (exemplar["latency_ms"], exemplar["dominant"])
                if exemplar else ""
            )
            print("  %9.3f ms  %-20s node=%s %s%s"
                  % (incident["t_ms"], incident["kind"],
                     incident["node"] or "-", incident["details"], suffix))
        if len(incidents.incidents) > 12:
            print("  ... %d more" % (len(incidents.incidents) - 12))
    else:
        print("incidents    : none")
    print()

    table = recorder.category_table()
    if table:
        rows = [(
            row["category"],
            "%d" % row["exemplars"],
            "%.3f" % (row["mean_latency_s"] * 1e3),
            "%.0f%%" % (row["mean_share"] * 100),
        ) for row in table]
        print(format_table(
            "tail exemplars by dominant category (%d captured)"
            % len(recorder.exemplars),
            ("category", "exemplars", "mean ms", "mean share"),
            rows,
        ))
        worst = max(recorder.exemplars, key=lambda e: e["latency_s"])
        breakdown = "  ".join(
            "%s=%.3fms" % (cat, s * 1e3)
            for cat, s in sorted(worst["breakdown"].items(),
                                 key=lambda kv: -kv[1])
        )
        print("worst        : %s  %.3f ms  (%s)"
              % (worst["trace"][:16], worst["latency_s"] * 1e3, breakdown))
    else:
        print("tail         : no exemplars captured "
              "(fewer than warmup commits, or no outliers)")

    if args.timeline_out:
        timeseries.write(args.timeline_out, csv=args.csv)
        print("timeline     written to %s" % args.timeline_out)
    if args.incidents_out:
        incidents.write(args.incidents_out)
        print("incidents    written to %s" % args.incidents_out)
    if args.exemplars_out:
        with open(args.exemplars_out, "w") as fp:
            fp.write(recorder.exemplars_jsonl())
        print("exemplars    written to %s" % args.exemplars_out)
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """Export the metrics hub of one workload run (Prometheus or table)."""
    from .obs import prometheus_text, summary_table

    cluster = _run_observed_workload(
        args.workload, args.clients, args.duration, args.seed, 5e-3
    )
    if args.prom:
        text = prometheus_text(cluster.obs.hub)
    else:
        text = summary_table(cluster.obs.snapshot()) + "\n"
    if args.out:
        with open(args.out, "w") as fp:
            fp.write(text)
        print("metrics written to %s" % args.out)
    else:
        sys.stdout.write(text)
    return 0


def _trace_critical_path(records, txn: Optional[str]) -> int:
    """Print one txn's critical path, or the aggregate phase table."""
    from .obs import (
        aggregate_critical_paths,
        critical_path,
        format_breakdown,
        format_phase_table,
        transaction_traces,
    )

    traces = transaction_traces(records)
    if not traces:
        print("no distributed transactions in the trace", file=sys.stderr)
        return 1
    if txn is None:
        committed = transaction_traces(records, outcome="commit")
        print("distributed transactions : %d (%d committed)"
              % (len(traces), len(committed)))
        print()
        print(format_phase_table(aggregate_critical_paths(records)))
        print()
        print("per-transaction breakdown: repro trace critical-path <txn>")
        preview = ", ".join(traces[:4])
        print("transaction ids (prefix ok, or 'last'): %s%s"
              % (preview, ", ..." if len(traces) > 4 else ""))
        return 0
    if txn == "last":
        matches = traces[-1:]
    else:
        matches = [t for t in traces if t == txn or t.startswith(txn)]
    if not matches:
        print("no distributed transaction matches %r" % txn, file=sys.stderr)
        print("known ids: %s" % ", ".join(traces), file=sys.stderr)
        return 1
    if len(matches) > 1:
        print("ambiguous id %r: %s" % (txn, ", ".join(matches)),
              file=sys.stderr)
        return 1
    path = critical_path(records, matches[0])
    print(format_breakdown(path))
    return 0


def cmd_attacks(args: argparse.Namespace) -> int:
    sys.path.insert(0, "examples")
    import importlib.util
    import os

    path = os.path.join(os.path.dirname(__file__), "..", "..", "examples",
                        "attack_detection.py")
    path = os.path.abspath(path)
    if not os.path.exists(path):
        print("examples/attack_detection.py not found", file=sys.stderr)
        return 1
    spec = importlib.util.spec_from_file_location("attack_detection", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()
    return 0


def cmd_mc(args: argparse.Namespace) -> int:
    if args.mode == "replay":
        if args.file is None:
            print("mc replay needs a counterexample file", file=sys.stderr)
            return 2
        return _mc_replay(args)
    return _mc_explore(args)


def _parse_budget(spec: Optional[str]) -> Optional[float]:
    """``"60s"`` / ``"60"`` -> seconds of wall-clock search budget."""
    if spec is None:
        return None
    return float(spec[:-1] if spec.endswith("s") else spec)


def _mc_counterexample_trace(document, path: str) -> None:
    """Replay a counterexample under the tracer, write a Chrome trace."""
    from .mc import replay_counterexample
    from .obs import write_chrome_trace

    _scope, result = replay_counterexample(
        document, tracing=True, keep_cluster=True
    )
    write_chrome_trace(result.cluster.obs.records(), path)
    print("chrome trace :", path)


def _mc_explore(args: argparse.Namespace) -> int:
    from .mc import explore, save_counterexample
    from .mc.harness import MUTATIONS, mutation_scope, parse_scope

    if args.mutate is not None and args.mutate not in MUTATIONS:
        print("unknown mutation %r (known: %s)"
              % (args.mutate, ", ".join(sorted(MUTATIONS))), file=sys.stderr)
        return 2
    if args.mutate is not None:
        # Focused scope in which the mutation's bug is reachable fast;
        # --scope is ignored (the mutation dictates the world).
        scope = mutation_scope(args.mutate)
    else:
        offsets = tuple(
            int(part) for part in args.crash_offsets.split(",") if part
        )
        overrides = {}
        if args.coordinator_only:
            from .mc import coordinator_crash_points

            overrides["actions"] = ()
            overrides["crash_points"] = coordinator_crash_points()
        if args.no_restart:
            overrides["no_restart"] = True
        scope = parse_scope(
            args.scope, max_crashes=args.max_crashes, crash_offsets=offsets,
            backend=args.backend,
            shards=1 if args.backend == "counter-sync" else 2,
            **overrides,
        )

    def progress(stats):
        if args.quiet or stats.runs % 200 != 0:
            return
        print("  ... depth %d: %d runs, %d states, %.0f%% pruned, %.0fs"
              % (stats.depth_reached, stats.runs, stats.states,
                 stats.prune_rate * 100, stats.elapsed_s))

    stats, counterexample = explore(
        scope,
        depth=args.depth,
        budget_s=_parse_budget(args.budget),
        max_runs=args.max_runs,
        mutation=args.mutate,
        progress=progress,
    )

    print("scope        : %dx%d (txns x nodes)%s"
          % (scope.txns, scope.nodes,
             ", mutation %s" % args.mutate if args.mutate else ""))
    print("actions      : %s; crashes: %d max over %d points"
          % (" ".join(scope.actions) or "(none)", scope.max_crashes,
             len(scope.crash_points)))
    print("runs         : %d (%.1f runs/s, %.1fs elapsed)"
          % (stats.runs, stats.runs_per_s, stats.elapsed_s))
    print("states       : %d distinct" % stats.states)
    print("pruned       : %d (%d sleep-set, %d visited-state) = %.1f%%"
          % (stats.pruned, stats.pruned_sleep, stats.pruned_visited,
             stats.prune_rate * 100))
    print("deepest trace: %d choice points" % stats.deepest_trace)
    for depth, exhausted in sorted(stats.depth_exhausted.items()):
        print("depth %-2d     : %s"
              % (depth, "exhausted" if exhausted else "budget-bounded"))

    if counterexample is None:
        print("violations   : none (every explored schedule green)")
        if args.expect_violation:
            print("FAIL: --expect-violation but none found", file=sys.stderr)
            return 1
        return 0

    print("violation    : %s" % stats.violation)
    print("trace        : %s (%d shrink runs)"
          % (counterexample["trace"], stats.shrink_runs))
    for choice in counterexample["choices"]:
        print("  [%d] %s -> %s"
              % (choice["index"], choice["label"],
                 choice["options"][choice["chosen"]]))
    save_counterexample(args.out, counterexample)
    print("saved        : %s (repro mc replay %s)" % (args.out, args.out))
    _mc_counterexample_trace(
        counterexample, args.out.rsplit(".", 1)[0] + ".trace.json"
    )
    if args.expect_violation:
        return 0
    return 1


def _mc_replay(args: argparse.Namespace) -> int:
    from .mc import load_counterexample, replay_counterexample

    document = load_counterexample(args.file)
    mutation = None if args.unmutated else "__from_document__"
    scope, result = replay_counterexample(
        document, mutation=mutation,
        tracing=bool(args.trace_out), keep_cluster=bool(args.trace_out),
    )
    print("trace        : %s" % document["trace"])
    print("mutation     : %s"
          % ("(disabled)" if args.unmutated else document.get("mutation")))
    print("outcomes     : %s" % result.outcomes)
    print("sim time     : %.3f s" % result.sim_time)
    for violation in result.violations:
        print("violation    : %s" % violation)
    if args.trace_out:
        from .obs import write_chrome_trace

        write_chrome_trace(result.cluster.obs.records(), args.trace_out)
        print("chrome trace :", args.trace_out)
    if args.unmutated:
        # Fix-validation workflow: the same schedule against the real
        # protocol must be green.
        print("replay       : %s" % ("green" if result.green else "STILL RED"))
        return 0 if result.green else 1
    expected = document.get("violations", [])
    if result.violations != expected:
        print("REPLAY DIVERGED from the recorded violations:", file=sys.stderr)
        print("  recorded: %s" % expected, file=sys.stderr)
        print("  replayed: %s" % result.violations, file=sys.stderr)
        return 1
    print("replay       : reproduced %d violation(s) bit-for-bit"
          % len(result.violations))
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    if args.mode == "smoke":
        if args.net_batch:
            return _bench_netbatch(args)
        if args.read_mostly:
            return _bench_read_mostly(args)
        return _bench_smoke(args)
    if args.mode == "scale-out":
        return _bench_scaleout(args)
    if args.mode == "baseline":
        return _bench_baseline(args)
    return _bench_sweep_window(args)


def _bench_baseline(args: argparse.Namespace) -> int:
    """Write or check the BENCH_treaty.json performance baseline."""
    from .bench.baseline import (
        BASELINE_PATH,
        check_baseline,
        format_baseline_deltas,
        load_baseline,
        run_baseline,
        write_baseline,
    )
    from .obs import format_phase_table

    document = run_baseline(
        num_clients=args.clients, duration=args.duration,
        backend=args.backend, shards=args.shards,
    )
    headline = document["metrics"]
    print("profile      :", document["meta"]["profile"])
    print("backend      : %s (%d counter shards)"
          % (document["meta"]["rollback_backend"],
             document["meta"]["counter_shards"]))
    print("throughput   : %.0f tps" % headline["throughput_tps"])
    print("p99 latency  : %.3f ms" % headline["p99_commit_latency_ms"])
    print("committed    : %d   aborted: %d"
          % (headline["committed"], headline["aborted"]))
    print("frames/txn   : %.2f   seals/txn: %.2f   counter rounds/txn: %.3f"
          % (headline["frames_per_txn"], headline["seal_ops_per_txn"],
             headline["counter_rounds_per_txn"]))
    timeline = document["timeline"]
    print("timeline     : %d windows, tps mean %.0f peak %.0f, %d stalled"
          % (timeline.get("windows", 0), timeline.get("tps_mean", 0.0),
             timeline.get("tps_peak", 0.0),
             timeline.get("stalled_windows", 0)))
    if timeline.get("incidents"):
        print("incidents    : "
              + "  ".join("%s=%d" % item
                          for item in sorted(timeline["incidents"].items())))
    print()
    print(format_phase_table(document["_aggregate"]))
    print()
    print(_format_tail_table(document["tail"]))
    if args.report_dir:
        _write_report_artifacts(document, args.report_dir)
    if args.check:
        reference_path = args.baseline_file or BASELINE_PATH
        try:
            reference = load_baseline(reference_path)
        except OSError as exc:
            print("cannot read baseline %s: %s" % (reference_path, exc),
                  file=sys.stderr)
            return 1
        failures = check_baseline(
            document, reference, tolerance=args.tolerance
        )
        print()
        print(format_baseline_deltas(
            document, reference, tolerance=args.tolerance
        ))
        if args.out:
            write_baseline(document, args.out)
            print("\ncurrent numbers written to %s" % args.out)
        if failures:
            for failure in failures:
                print("BASELINE REGRESSION: %s" % failure, file=sys.stderr)
            return 1
        print("\nbaseline check PASSED against %s" % reference_path)
        return 0
    out = args.out or BASELINE_PATH
    write_baseline(document, out)
    print("\nbaseline written to %s" % out)
    return 0


def _format_tail_table(tail: dict) -> str:
    """The baseline's p99-vs-p50 critical-path tail comparison."""
    from .bench.reporting import format_table

    rows = []
    for category, entry in sorted(
        tail.get("categories", {}).items(),
        key=lambda kv: -kv[1]["tail_share"],
    ):
        rows.append((
            category,
            "%.1f%%" % (entry["share"] * 100),
            "%.1f%%" % (entry["tail_share"] * 100),
            "%+.1f pp" % entry["delta_pp"],
        ))
    title = ("critical-path tail breakdown (p99 %.3f ms = %.2fx p50, "
             "%d tail txns)"
             % (tail.get("p99_ms", 0.0), tail.get("amplification_x", 1.0),
                tail.get("txns", 0)))
    return format_table(title, ("category", "share", "tail share", "delta"),
                        rows)


def _write_report_artifacts(document: dict, report_dir: str) -> None:
    """Baseline-mode CI artifacts: timeline, incidents, exemplars."""
    import os

    os.makedirs(report_dir, exist_ok=True)
    timeseries = document["_timeseries"]
    timeseries.write(os.path.join(report_dir, "timeline.jsonl"))
    timeseries.write(os.path.join(report_dir, "timeline.csv"), csv=True)
    document["_incidents"].write(
        os.path.join(report_dir, "incidents.jsonl")
    )
    with open(os.path.join(report_dir, "exemplars.jsonl"), "w") as fp:
        fp.write(document["_recorder"].exemplars_jsonl())
    print("\nreport artifacts written to %s/" % report_dir.rstrip("/"))


def _bench_smoke(args: argparse.Namespace) -> int:
    """Short full-pipeline run under the strict monitor (CI gate)."""
    from .bench.harness import durability_smoke
    from .obs import MonitorViolation

    try:
        metrics = durability_smoke(
            num_clients=args.clients or 24, duration=args.duration or 0.2,
            flight_recorder=args.flight_recorder,
        )
    except MonitorViolation as exc:
        print("MONITOR VIOLATION: %s" % exc, file=sys.stderr)
        return 1
    _print_metrics(metrics)
    if args.flight_recorder:
        flight = metrics.extra_info["flight"]
        recorder, timeline = flight["recorder"], flight["timeline"]
        print("flight rec.  : %d commits, p50 %.3f ms, p99 %.3f ms, "
              "%d exemplars, %d ring-evicted"
              % (recorder["commits"], recorder["p50_ms"],
                 recorder["tail_ms"], recorder["exemplars"],
                 recorder["ring_evicted"]))
        print("timeline     : %d windows, tps mean %.0f peak %.0f, "
              "%d stalled"
              % (timeline.get("windows", 0), timeline.get("tps_mean", 0.0),
                 timeline.get("tps_peak", 0.0),
                 timeline.get("stalled_windows", 0)))
        if flight["incidents"]:
            print("incidents    : "
                  + "  ".join("%s=%d" % item
                              for item in sorted(flight["incidents"].items())))
    monitor = metrics.extra_info.get("monitor", {})
    durability = metrics.extra_info["obs"].get("durability", {})
    print("monitor      : %d events, %d violations"
          % (monitor.get("events_seen", 0), len(monitor.get("violations", []))))
    if "rounds_per_committed_txn" in durability:
        print("counter rounds/committed txn : %.3f"
              % durability["rounds_per_committed_txn"])
    batch = durability.get("stabilize.batch_size")
    if batch:
        print("stabilize batch size         : mean %.2f  max %d"
              % (batch["mean"], batch["max"]))
    if not monitor.get("green", True):
        for violation in monitor["violations"]:
            print("MONITOR VIOLATION: %s" % violation, file=sys.stderr)
        return 1
    return 0


def _bench_read_mostly(args: argparse.Namespace) -> int:
    """Read-mostly fast-path gate (CI): snapshot reads must pay off.

    Runs YCSB-C twice on the same seed — coordinator-free snapshot
    reads on, then plain locking 2PC — and fails the build unless the
    snapshot run (a) kept the cluster fabric quiet (frames per
    committed transaction ≈ 0), (b) reduced p50 latency, and (c) did
    not lose throughput against the locking path.
    """
    from .bench.harness import ycsb_variant_run
    from .bench.reporting import format_table

    _, snap = ycsb_variant_run("c", True, args.clients, args.duration)
    _, lock = ycsb_variant_run("c", False, args.clients, args.duration)
    rows = []
    for label, stats in (("snapshot", snap), ("locking", lock)):
        rows.append((
            label,
            "%d" % stats["committed"],
            "%.0f" % stats["throughput_tps"],
            "%.3f" % stats["p50_ms"],
            "%.3f" % stats["cluster_frames_per_txn"],
        ))
    print(format_table(
        "read-mostly fast path (YCSB-C, Treaty full)",
        ("mode", "committed", "tput (tps)", "p50 ms", "cluster frames/txn"),
        rows,
    ))
    counters = snap["counters"]
    print("read-only   : %d local, %d upgraded, %d conflicts"
          % (counters["txn.readonly.local"],
             counters["txn.readonly.upgraded"],
             counters["txn.readonly.conflicts"]))
    failed = 0
    if snap["cluster_frames_per_txn"] > 0.5:
        print("FAIL: read-only transactions touched the cluster fabric "
              "(%.3f frames/txn)" % snap["cluster_frames_per_txn"],
              file=sys.stderr)
        failed = 1
    if snap["p50_ms"] >= lock["p50_ms"]:
        print("FAIL: snapshot reads did not reduce YCSB-C p50 "
              "(%.3f ms >= %.3f ms)" % (snap["p50_ms"], lock["p50_ms"]),
              file=sys.stderr)
        failed = 1
    if snap["throughput_tps"] <= lock["throughput_tps"]:
        print("FAIL: snapshot reads lost throughput "
              "(%.0f tps <= %.0f tps)"
              % (snap["throughput_tps"], lock["throughput_tps"]),
              file=sys.stderr)
        failed = 1
    if not failed:
        print("read-mostly gate PASSED: %.3f frames/txn, p50 %.3f ms "
              "vs locking %.3f ms"
              % (snap["cluster_frames_per_txn"], snap["p50_ms"],
                 lock["p50_ms"]))
    return failed


def _bench_netbatch(args: argparse.Namespace) -> int:
    """Batching-off vs batching-on comparison (CI gate for the win).

    Fails the build unless batching strictly reduces both delivered
    frames and AEAD seal operations per committed transaction, and the
    invariant monitor stays green in both runs.  ``--hist-out`` writes
    the batching-on occupancy histogram as JSON (CI artifact).
    """
    import json

    from .bench.harness import netbatch_compare
    from .bench.reporting import format_table
    from .obs import MonitorViolation

    try:
        results = netbatch_compare(
            num_clients=args.clients,
            duration=args.duration,
            locality=0.0 if args.locality is None else args.locality,
        )
    except MonitorViolation as exc:
        print("MONITOR VIOLATION: %s" % exc, file=sys.stderr)
        return 1
    rows = []
    for label in ("off", "on"):
        stats = results[label]
        rows.append((
            label,
            "%d" % stats["committed"],
            "%.0f" % stats["throughput"],
            "%.1f" % stats["frames_per_txn"],
            "%.1f" % stats["seals_per_txn"],
            "%.2f" % stats["batch_occupancy"]["mean"],
        ))
    print(format_table(
        "transport batching comparison (YCSB 50/50, Treaty full)",
        ("batching", "committed", "tput (tps)", "frames/txn",
         "seals/txn", "occupancy"),
        rows,
    ))
    reduction = results["reduction"]
    print("reduction    : frames/txn %.1f%%  seals/txn %.1f%%"
          % (reduction["frames_per_txn"] * 100,
             reduction["seals_per_txn"] * 100))
    if args.hist_out:
        with open(args.hist_out, "w") as fh:
            json.dump(results["on"]["batch_occupancy"], fh, indent=2)
        print("occupancy histogram written to %s" % args.hist_out)
    failed = 0
    for label in ("off", "on"):
        monitor = results[label]["monitor"]
        if not monitor.get("green", True):
            for violation in monitor["violations"]:
                print("MONITOR VIOLATION (batching %s): %s"
                      % (label, violation), file=sys.stderr)
            failed = 1
    if reduction["frames_per_txn"] <= 0.0 or reduction["seals_per_txn"] <= 0.0:
        print("FAIL: batching did not reduce frames and seal ops per txn",
              file=sys.stderr)
        failed = 1
    return failed


def _bench_scaleout(args: argparse.Namespace) -> int:
    """Cluster-size sweep: per-txn frame/counter-round growth."""
    from .bench.harness import scaleout_sweep
    from .bench.reporting import format_table
    from .obs import MonitorViolation

    nodes = tuple(int(token) for token in args.nodes.split(","))
    locality = 0.9 if args.locality is None else args.locality
    try:
        results = scaleout_sweep(
            nodes=nodes,
            num_clients=args.clients,
            duration=args.duration,
            locality=locality,
        )
    except MonitorViolation as exc:
        print("MONITOR VIOLATION: %s" % exc, file=sys.stderr)
        return 1
    rows = []
    for num_nodes, stats in results:
        rows.append((
            "%d" % num_nodes,
            "%d" % stats["committed"],
            "%.0f" % stats["throughput"],
            "%.1f" % stats["frames_per_txn"],
            "%.1f" % stats["seals_per_txn"],
            "%.3f" % stats["counter_rounds_per_txn"],
        ))
    print(format_table(
        "scale-out sweep (partitioned YCSB, locality %.0f%%)"
        % (locality * 100),
        ("nodes", "committed", "tput (tps)", "frames/txn",
         "seals/txn", "rounds/txn"),
        rows,
    ))
    failed = 0
    for num_nodes, stats in results:
        monitor = stats["monitor"]
        if not monitor.get("green", True):
            for violation in monitor["violations"]:
                print("MONITOR VIOLATION (%d nodes): %s"
                      % (num_nodes, violation), file=sys.stderr)
            failed = 1
    # Sublinear growth gate: frames per txn from the smallest to the
    # largest cluster must grow by less than the node-count ratio.
    if len(results) >= 2:
        first_nodes, first = results[0]
        last_nodes, last = results[-1]
        node_ratio = last_nodes / first_nodes
        frame_ratio = last["frames_per_txn"] / max(
            1e-9, first["frames_per_txn"]
        )
        print("growth       : nodes x%.2f  frames/txn x%.2f"
              % (node_ratio, frame_ratio))
        if frame_ratio >= node_ratio:
            print("FAIL: frames per txn grew superlinearly with cluster size",
                  file=sys.stderr)
            failed = 1
    return failed


def _bench_sweep_window(args: argparse.Namespace) -> int:
    """Sweep the group-commit window; print the latency/throughput frontier."""
    from .bench.harness import sweep_group_commit_window
    from .bench.reporting import format_table

    windows: Optional[List[Optional[float]]] = None
    if args.windows:
        windows = [
            None if token == "adaptive" else float(token) * 1e-6
            for token in args.windows.split(",")
        ]
    results = sweep_group_commit_window(
        windows=windows, num_clients=args.clients, duration=args.duration,
        arrivals=args.arrivals,
    )
    rows = []
    for label, metrics in results:
        summary = metrics.summary()
        durability = metrics.extra_info["obs"].get("durability", {})
        batch = durability.get("group_commit.batch_size") or {}
        rows.append((
            label,
            "%.0f" % summary["throughput_tps"],
            "%.3f" % summary["mean_latency_ms"],
            "%.3f" % summary["p99_ms"],
            "%.2f" % batch.get("mean", 1.0),
            "%.3f" % durability.get("rounds_per_committed_txn", 0.0),
        ))
    print(format_table(
        "group-commit window sweep (YCSB 50/50, Treaty w/ Enc w/ Stab)",
        ("window", "tput (tps)", "mean (ms)", "p99 (ms)",
         "batch", "rounds/txn"),
        rows,
    ))
    return 0


def _print_metrics(metrics: MetricsCollector) -> None:
    summary = metrics.summary()
    print("profile      :", summary["name"])
    print("throughput   : %.0f tps" % summary["throughput_tps"])
    print("mean latency : %.2f ms" % summary["mean_latency_ms"])
    print("p99 latency  : %.2f ms" % summary["p99_ms"])
    print("committed    : %d   aborted: %d"
          % (summary["committed"], summary["aborted"]))
    if "obs" in metrics.extra_info:
        from .bench.reporting import format_phase_breakdown

        print(format_phase_breakdown(metrics.extra_info["obs"]))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Treaty: Secure Distributed Transactions (reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("info", help="profiles and cost model").set_defaults(
        func=cmd_info
    )

    demo = subparsers.add_parser("demo", help="a few secure transactions")
    _add_profile_argument(demo)
    demo.add_argument("--keys", type=int, default=8)
    demo.set_defaults(func=cmd_demo)

    ycsb = subparsers.add_parser("ycsb", help="run a YCSB experiment")
    _add_profile_argument(ycsb)
    ycsb.add_argument("--reads", type=float, default=0.5)
    ycsb.add_argument("--keys", type=int, default=10_000)
    ycsb.add_argument("--clients", type=int, default=24)
    ycsb.add_argument("--duration", type=float, default=0.3)
    ycsb.add_argument(
        "--distribution", default="uniform", choices=["uniform", "zipfian"]
    )
    ycsb.set_defaults(func=cmd_ycsb)

    tpcc = subparsers.add_parser("tpcc", help="run a TPC-C experiment")
    _add_profile_argument(tpcc)
    tpcc.add_argument("--warehouses", type=int, default=10)
    tpcc.add_argument("--clients", type=int, default=10)
    tpcc.add_argument("--duration", type=float, default=0.5)
    tpcc.set_defaults(func=cmd_tpcc)

    trace = subparsers.add_parser(
        "trace", help="run a workload under the tracer, write a Chrome trace"
    )
    _add_profile_argument(trace)
    trace.add_argument(
        "mode", nargs="?", default="record",
        choices=["record", "critical-path"],
        help="record: write trace files (default); critical-path: print "
             "a transaction's critical-path latency breakdown",
    )
    trace.add_argument(
        "txn", nargs="?", default=None,
        help="critical-path mode: transaction id (hex trace id, a unique "
             "prefix, or 'last'); omit for the aggregate p50/p99 table",
    )
    trace.add_argument(
        "--from-jsonl", default=None,
        help="critical-path mode: analyze a previously recorded --jsonl "
             "file instead of running a workload",
    )
    trace.add_argument(
        "--workload", default="ycsb", choices=["ycsb", "tpcc", "demo"]
    )
    trace.add_argument("--out", default="trace.json",
                       help="Chrome trace-event output path")
    trace.add_argument("--jsonl", default=None,
                       help="also write raw records as JSON lines")
    trace.add_argument("--clients", type=int, default=8)
    trace.add_argument("--duration", type=float, default=0.05,
                       help="simulated seconds of workload")
    trace.add_argument("--seed", type=int, default=7)
    trace.set_defaults(func=cmd_trace)

    report = subparsers.add_parser(
        "report",
        help="run a workload with the flight recorder on; print the "
             "timeline, incidents, and tail-exemplar tables",
    )
    report.add_argument(
        "--workload", default="ycsb", choices=["ycsb", "demo"]
    )
    report.add_argument("--clients", type=int, default=16)
    report.add_argument("--duration", type=float, default=0.1,
                        help="simulated seconds of workload")
    report.add_argument("--seed", type=int, default=7)
    report.add_argument("--window", type=float, default=5.0,
                        help="time-series window width in milliseconds")
    report.add_argument("--timeline-out", default=None,
                        help="write the per-window timeline (JSONL, or "
                             "CSV with --csv)")
    report.add_argument("--csv", action="store_true",
                        help="write --timeline-out as CSV instead of JSONL")
    report.add_argument("--incidents-out", default=None,
                        help="write the incident log as JSONL")
    report.add_argument("--exemplars-out", default=None,
                        help="write captured tail exemplars as JSONL")
    report.set_defaults(func=cmd_report)

    metrics = subparsers.add_parser(
        "metrics", help="export a workload run's metrics registry"
    )
    metrics.add_argument("mode", choices=["export"],
                         help="export: run a workload, dump the hub")
    metrics.add_argument(
        "--prom", action="store_true",
        help="Prometheus text exposition instead of the summary table",
    )
    metrics.add_argument("--out", default=None,
                         help="write to this path instead of stdout")
    metrics.add_argument(
        "--workload", default="demo", choices=["ycsb", "demo"]
    )
    metrics.add_argument("--clients", type=int, default=8)
    metrics.add_argument("--duration", type=float, default=0.05)
    metrics.add_argument("--seed", type=int, default=7)
    metrics.set_defaults(func=cmd_metrics)

    bench = subparsers.add_parser(
        "bench",
        help="durability-pipeline benchmarks (smoke, sweep-window, scale-out)",
    )
    bench.add_argument(
        "mode", choices=["smoke", "sweep-window", "scale-out", "baseline"],
        help="smoke: monitored full-pipeline run (CI gate); "
             "sweep-window: group-commit window frontier; "
             "scale-out: cluster-size sweep under transport batching; "
             "baseline: write/check the BENCH_treaty.json baseline",
    )
    bench.add_argument("--clients", type=int, default=None,
                       help="concurrent YCSB clients")
    bench.add_argument("--duration", type=float, default=None,
                       help="simulated seconds of measured workload")
    bench.add_argument(
        "--windows", default=None,
        help="comma-separated window values in microseconds for "
             "sweep-window ('adaptive' selects the EWMA window), "
             "e.g. '0,50,100,adaptive'",
    )
    bench.add_argument(
        "--arrivals", default="closed", choices=["closed", "bursty"],
        help="sweep-window arrival process: closed loop or bursty "
             "(on-off with Pareto idle gaps)",
    )
    bench.add_argument(
        "--flight-recorder", action="store_true",
        help="smoke mode: run with the always-on observability stack "
             "(ring tracer + time series + incidents) and print its "
             "summaries — proves recording does not move the workload",
    )
    bench.add_argument(
        "--report-dir", default=None,
        help="baseline mode: also write timeline.jsonl / timeline.csv / "
             "incidents.jsonl / exemplars.jsonl into this directory "
             "(CI artifacts)",
    )
    bench.add_argument(
        "--net-batch", action="store_true",
        help="smoke mode: compare transport batching off vs on and "
             "assert the frame/seal-op reduction (CI gate)",
    )
    bench.add_argument(
        "--read-mostly", action="store_true",
        help="smoke mode: gate the coordinator-free snapshot-read fast "
             "path — YCSB-C cluster frames/txn must stay ~0 and its "
             "p50/throughput must beat locking 2PC (CI gate)",
    )
    bench.add_argument(
        "--hist-out", default=None,
        help="with --net-batch: write the batch-occupancy histogram "
             "as JSON to this path (CI artifact)",
    )
    bench.add_argument(
        "--nodes", default="3,5,7,9",
        help="scale-out mode: comma-separated cluster sizes",
    )
    bench.add_argument(
        "--locality", type=float, default=None,
        help="fraction of transactions kept single-shard (partitioned "
             "workload; defaults: 0.0 for --net-batch, 0.9 for scale-out)",
    )
    bench.add_argument(
        "--check", action="store_true",
        help="baseline mode: compare against the checked-in "
             "BENCH_treaty.json and fail on a regression (CI gate)",
    )
    bench.add_argument(
        "--out", default=None,
        help="baseline mode: where to write the baseline JSON "
             "(default BENCH_treaty.json; with --check, only written "
             "when given explicitly)",
    )
    bench.add_argument(
        "--baseline-file", default=None,
        help="baseline mode with --check: reference file to compare "
             "against (default BENCH_treaty.json)",
    )
    bench.add_argument(
        "--tolerance", type=float, default=0.25,
        help="baseline mode with --check: allowed relative drift per "
             "gated metric",
    )
    bench.add_argument(
        "--backend", default=None,
        choices=["counter-sync", "counter-async", "lcm"],
        help="baseline mode: rollback-protection backend for the run "
             "(default counter-async — the bench frontier; the "
             "per-cluster default stays counter-sync)",
    )
    bench.add_argument(
        "--shards", type=int, default=None,
        help="baseline mode: independent counter groups "
             "(default 4 for the bench frontier)",
    )
    bench.set_defaults(func=cmd_bench)

    attacks = subparsers.add_parser(
        "attacks", help="attack-detection demonstration"
    )
    attacks.set_defaults(func=cmd_attacks)

    mc = subparsers.add_parser(
        "mc",
        help="model checker: exhaustive small-scope schedule search "
             "(docs/MODELCHECK.md)",
    )
    mc.add_argument(
        "mode", choices=["explore", "replay"],
        help="explore: iterative-deepening search over crash/adversary "
             "schedules; replay: re-execute a saved counterexample",
    )
    mc.add_argument(
        "file", nargs="?", default=None,
        help="replay mode: counterexample JSON written by explore",
    )
    mc.add_argument("--scope", default="2x3",
                    help="explore: '<txns>x<nodes>' world size")
    mc.add_argument("--depth", type=int, default=2,
                    help="explore: max perturbations per schedule "
                         "(iterative deepening 1..depth)")
    mc.add_argument("--budget", default=None,
                    help="explore: wall-clock budget, e.g. '60s'")
    mc.add_argument("--max-runs", type=int, default=None,
                    help="explore: stop after this many executed schedules")
    mc.add_argument("--max-crashes", type=int, default=1,
                    help="explore: crash injections per schedule")
    mc.add_argument("--crash-offsets", default="0",
                    help="explore: comma-separated victim offsets relative "
                         "to the node emitting a crash point (0 = the "
                         "emitter itself); '0,1,2' lets any node die at "
                         "any point")
    mc.add_argument("--coordinator-only", action="store_true",
                    help="explore: restrict crash points to the "
                         "coordinator's decision path (adversary actions "
                         "off) — the non-blocking-commit battery")
    mc.add_argument("--no-restart", action="store_true",
                    help="explore: crashed nodes stay dead; survivors must "
                         "converge via the completer protocol")
    mc.add_argument("--mutate", default=None,
                    help="explore: disable one recovery rule (its focused "
                         "scope replaces --scope); the checker must find a "
                         "counterexample")
    mc.add_argument("--backend", default="counter-sync",
                    choices=["counter-sync", "counter-async", "lcm"],
                    help="explore: rollback-protection backend for the "
                         "bounded worlds (coverage backends run with 2 "
                         "counter shards); ignored with --mutate")
    mc.add_argument("--out", default="mc-counterexample.json",
                    help="explore: where to write a found counterexample")
    mc.add_argument("--expect-violation", action="store_true",
                    help="explore: exit 0 iff a counterexample was found "
                         "(CI mutation smoke)")
    mc.add_argument("--quiet", action="store_true",
                    help="explore: suppress progress lines")
    mc.add_argument("--trace-out", default=None,
                    help="replay: also write a Chrome trace of the replay")
    mc.add_argument("--unmutated", action="store_true",
                    help="replay: run the trace against the unmutated "
                         "protocol (fix validation; exit 0 iff green)")
    mc.set_defaults(func=cmd_mc)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
