"""Stabilization protocol glue (§VI).

The stabilization protocol has three legs — collective attestation
(:mod:`repro.core.cas`), crash-consistent logs
(:mod:`repro.storage.log`), and distributed rollback protection
(:mod:`repro.core.trusted_counter`).  This module provides the
:class:`Stabilizer` callable those layers share: it is what the engine,
transaction manager and 2PC roles invoke to make a log entry
rollback-protected, and it centralizes the profile gate and statistics.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, Optional, Sequence, Tuple

from ..sim.core import Event
from ..tee.runtime import NodeRuntime
from .rollback import RollbackProtection
from .trusted_counter import CounterClient

__all__ = ["Stabilizer", "FreshnessWitness"]

Gen = Generator[Event, Any, Any]


class Stabilizer:
    """Makes ``(log, counter)`` pairs rollback-protected via the
    configured :class:`~repro.core.rollback.RollbackProtection` backend;
    a no-op under profiles without stabilization."""

    def __init__(
        self,
        runtime: NodeRuntime,
        counter_client: Optional[CounterClient],
        backend: Optional[RollbackProtection] = None,
    ):
        self.runtime = runtime
        self.counter_client = counter_client
        #: how stabilization is established (sync round, coverage
        #: promise, LCM echo).  Callers that construct a bare Stabilizer
        #: without a backend get the original synchronous client path.
        self.backend = backend
        self.tracer = runtime.tracer
        self.waits = 0
        self.total_wait_time = 0.0

    @property
    def enabled(self) -> bool:
        return (
            self.runtime.profile.stabilization and self.counter_client is not None
        )

    def __call__(self, log_name: str, counter: int) -> Gen:
        """Block until the entry is stable (Figure 2, steps 5–8)."""
        if not self.enabled or counter <= 0:
            return
        start = self.runtime.now
        span = self.tracer.span(
            "stabilize", "wait", node=self.runtime.name or None,
            log=log_name, counter=counter,
        )
        try:
            if self.backend is not None:
                yield from self.backend.stabilize(log_name, counter)
            else:
                yield from self.counter_client.stabilize(log_name, counter)
        finally:
            # A NetworkError out of a detached NIC (zombie fiber after a
            # crash) must not leak the span.
            span.close()
        self.waits += 1
        self.total_wait_time += self.runtime.now - start
        self.runtime.metrics.histogram("stabilize.wait_s").observe(
            self.runtime.now - start
        )

    def many(self, targets: Sequence[Tuple[str, int]]) -> Gen:
        """Block until every ``(log, counter)`` target is stable.

        The targets are registered together, so the counter service's
        round driver covers them with a single echo-broadcast execution;
        the caller pays one wait for the whole set (the group-commit
        leader's batch stabilization).
        """
        if not self.enabled:
            return
        targets = [(log, counter) for log, counter in targets if counter > 0]
        if not targets:
            return
        start = self.runtime.now
        span = self.tracer.span(
            "stabilize", "wait", node=self.runtime.name or None,
            log=",".join(log for log, _ in targets),
            counter=max(counter for _, counter in targets),
        )
        try:
            if self.backend is not None:
                yield from self.backend.stabilize_many(targets)
            else:
                yield from self.counter_client.stabilize_many(targets)
        finally:
            span.close()
        self.waits += 1
        self.total_wait_time += self.runtime.now - start
        self.runtime.metrics.histogram("stabilize.wait_s").observe(
            self.runtime.now - start
        )

    def background(self, log_name: str, counter: int) -> None:
        """Fire-and-forget stabilization (commit records, GC edits)."""
        if not self.enabled or counter <= 0:
            return
        self.runtime.sim.process(
            self(log_name, counter), name="stabilize-bg/%s" % log_name
        )

    def mean_wait(self) -> float:
        if self.waits == 0:
            return 0.0
        return self.total_wait_time / self.waits


class FreshnessWitness:
    """Maps the stabilized counter frontier to a storage sequence frontier.

    Coordinator-free snapshot reads (``read_only_snapshot``) need a local
    proof that everything a read observed is *rollback-protected*: a seq
    the snapshot exposed must never disappear in a rollback attack, or a
    committed read-only transaction could have returned state that the
    cluster later denies.  The group committer assigns storage sequence
    numbers in batch order inside its leader critical section, *before*
    writing the batch's WAL record — so ``(log, counter, max_seq)``
    watermarks recorded at ``log_commits`` time are monotone in both
    coordinates.  The stabilized counter frontier (the per-log echo
    ``Gate`` value) then induces a **stable sequence frontier**: every
    seq ≤ :meth:`stable_seq` sits under a WAL counter the quorum has
    echoed.

    A read-only commit with ``max(read seqs) ≤ stable_seq()`` is fresh —
    it proves itself without any coordinator round.  A stale one calls
    :meth:`wait_cover`, which *joins* the covering stabilization round
    (the same vectored round in-flight commits already pay for) rather
    than starting a dedicated one.
    """

    def __init__(self, runtime: NodeRuntime, stabilizer: Stabilizer):
        self.runtime = runtime
        self.stabilizer = stabilizer
        #: pending watermarks, monotone in (counter, max_seq) per log.
        self._marks: Deque[Tuple[str, int, int]] = deque()
        #: seqs ≤ floor need no witness: recovery replays only the
        #: stable WAL prefix, and bulk loads bypass the WAL entirely.
        self._floor = 0
        self._new_mark: Optional[Event] = None

    @property
    def enabled(self) -> bool:
        return self.stabilizer.enabled

    # -- producer side (group committer) -------------------------------------
    def record(self, log_name: str, counter: int, max_seq: int) -> None:
        """Watermark: seqs ≤ ``max_seq`` are covered once ``(log_name,
        counter)`` stabilizes.  Called by the group-commit leader right
        after ``log_commits``."""
        if not self.enabled:
            self._floor = max(self._floor, max_seq)
            return
        self._marks.append((log_name, counter, max_seq))
        if self._new_mark is not None:
            event, self._new_mark = self._new_mark, None
            event.succeed(None)

    def advance_floor(self, seq: int) -> None:
        """Declare seqs ≤ ``seq`` stable without a witness (recovery
        replays only the stable prefix; bulk loads bypass the WAL)."""
        self._floor = max(self._floor, seq)

    # -- consumer side (read-only snapshot commits) --------------------------
    def _stable_value(self, log_name: str) -> int:
        backend = self.stabilizer.backend
        if backend is not None:
            return backend.stable_value(log_name)
        return self.stabilizer.counter_client.stable_value(log_name)

    def stable_seq(self) -> int:
        """The stable sequence frontier: highest seq proven covered."""
        while self._marks:
            log_name, counter, max_seq = self._marks[0]
            if self._stable_value(log_name) < counter:
                break
            self._floor = max(self._floor, max_seq)
            self._marks.popleft()
        return self._floor

    def covers(self, seq: int) -> bool:
        """True iff ``seq`` is inside the proven-fresh window."""
        if not self.enabled:
            return True
        return seq <= self.stable_seq()

    def wait_cover(self, seq: int) -> Gen:
        """Block until the frontier covers ``seq``.

        Joins the stabilization round of the first watermark at or above
        ``seq``; if the covering batch has applied but not yet logged its
        WAL record, waits for its watermark to appear first.
        """
        while not self.covers(seq):
            target = None
            for log_name, counter, max_seq in self._marks:
                if max_seq >= seq:
                    target = (log_name, counter)
                    break
            if target is not None:
                yield from self.stabilizer(*target)
                continue
            # The covering commit applied its writes but has not reached
            # log_commits yet — wait for the next watermark and re-check.
            if self._new_mark is None:
                self._new_mark = self.runtime.sim.event()
            yield self._new_mark
