"""Stabilization protocol glue (§VI).

The stabilization protocol has three legs — collective attestation
(:mod:`repro.core.cas`), crash-consistent logs
(:mod:`repro.storage.log`), and distributed rollback protection
(:mod:`repro.core.trusted_counter`).  This module provides the
:class:`Stabilizer` callable those layers share: it is what the engine,
transaction manager and 2PC roles invoke to make a log entry
rollback-protected, and it centralizes the profile gate and statistics.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Sequence, Tuple

from ..sim.core import Event
from ..tee.runtime import NodeRuntime
from .rollback import RollbackProtection
from .trusted_counter import CounterClient

__all__ = ["Stabilizer"]

Gen = Generator[Event, Any, Any]


class Stabilizer:
    """Makes ``(log, counter)`` pairs rollback-protected via the
    configured :class:`~repro.core.rollback.RollbackProtection` backend;
    a no-op under profiles without stabilization."""

    def __init__(
        self,
        runtime: NodeRuntime,
        counter_client: Optional[CounterClient],
        backend: Optional[RollbackProtection] = None,
    ):
        self.runtime = runtime
        self.counter_client = counter_client
        #: how stabilization is established (sync round, coverage
        #: promise, LCM echo).  Callers that construct a bare Stabilizer
        #: without a backend get the original synchronous client path.
        self.backend = backend
        self.tracer = runtime.tracer
        self.waits = 0
        self.total_wait_time = 0.0

    @property
    def enabled(self) -> bool:
        return (
            self.runtime.profile.stabilization and self.counter_client is not None
        )

    def __call__(self, log_name: str, counter: int) -> Gen:
        """Block until the entry is stable (Figure 2, steps 5–8)."""
        if not self.enabled or counter <= 0:
            return
        start = self.runtime.now
        span = self.tracer.span(
            "stabilize", "wait", node=self.runtime.name or None,
            log=log_name, counter=counter,
        )
        try:
            if self.backend is not None:
                yield from self.backend.stabilize(log_name, counter)
            else:
                yield from self.counter_client.stabilize(log_name, counter)
        finally:
            # A NetworkError out of a detached NIC (zombie fiber after a
            # crash) must not leak the span.
            span.close()
        self.waits += 1
        self.total_wait_time += self.runtime.now - start
        self.runtime.metrics.histogram("stabilize.wait_s").observe(
            self.runtime.now - start
        )

    def many(self, targets: Sequence[Tuple[str, int]]) -> Gen:
        """Block until every ``(log, counter)`` target is stable.

        The targets are registered together, so the counter service's
        round driver covers them with a single echo-broadcast execution;
        the caller pays one wait for the whole set (the group-commit
        leader's batch stabilization).
        """
        if not self.enabled:
            return
        targets = [(log, counter) for log, counter in targets if counter > 0]
        if not targets:
            return
        start = self.runtime.now
        span = self.tracer.span(
            "stabilize", "wait", node=self.runtime.name or None,
            log=",".join(log for log, _ in targets),
            counter=max(counter for _, counter in targets),
        )
        try:
            if self.backend is not None:
                yield from self.backend.stabilize_many(targets)
            else:
                yield from self.counter_client.stabilize_many(targets)
        finally:
            span.close()
        self.waits += 1
        self.total_wait_time += self.runtime.now - start
        self.runtime.metrics.histogram("stabilize.wait_s").observe(
            self.runtime.now - start
        )

    def background(self, log_name: str, counter: int) -> None:
        """Fire-and-forget stabilization (commit records, GC edits)."""
        if not self.enabled or counter <= 0:
            return
        self.runtime.sim.process(
            self(log_name, counter), name="stabilize-bg/%s" % log_name
        )

    def mean_wait(self) -> float:
        if self.waits == 0:
            return 0.0
        return self.total_wait_time / self.waits
