"""Recovery and attack-scenario helpers (§VI).

The recovery protocol itself lives in :meth:`TreatyNode.recover` —
MANIFEST first, then live WALs, then the Clog, with integrity checks on
every entry and freshness checks against the trusted counter service.
This module packages the crash / attack scenarios the paper's security
argument covers, so tests, examples and benchmarks can inject them with
one call each.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Sequence

from ..net.message import MsgType, TxMessage
from ..sim.core import Event
from ..storage.disk import DiskSnapshot
from .cluster import TreatyCluster
from .ids import GlobalTxnId
from .node import TreatyNode
from .trusted_counter import CounterClient
from .twopc import RESOLUTION_RETRY_INTERVAL, DecisionRecord

__all__ = [
    "StableCounterResolver",
    "DecisionResolver",
    "crash_and_recover",
    "rollback_attack",
    "tamper_attack",
    "snapshot_node_disk",
]

Gen = Generator[Event, Any, Any]


class StableCounterResolver:
    """Caching, vector-capable stable-counter reader for recovery.

    Behaves as the resolver callable that
    :meth:`~repro.storage.engine.LSMEngine.recover` expects
    (``(log_name) -> stable value``), but additionally exposes
    :meth:`prefetch`, which the engine uses to resolve every live WAL
    and Clog in *one* vectored quorum read per counter group instead of
    one query round per log.  With sharded counter groups
    (``counter_shards > 1``) the missing logs are routed by the same
    deterministic log→shard hash the write path uses and the per-shard
    reads run concurrently.  Values are cached, so the per-log freshness
    checks (and the node's later Clog check) reuse the answers.
    """

    def __init__(self, counter_client: CounterClient):
        self.counter_client = counter_client
        self._cache: Dict[str, int] = {}
        #: vectored quorum reads actually issued (for tests/metrics).
        self.reads = 0

    def prefetch(self, log_names: Sequence[str]) -> Gen:
        """Resolve many logs with one quorum-read round per shard."""
        client = self.counter_client
        missing = sorted(
            set(name for name in log_names if name not in self._cache)
        )
        if not missing:
            return
        by_shard: Dict[int, List[str]] = {}
        for name in missing:
            by_shard.setdefault(client.shard_of(name), []).append(name)
        if len(by_shard) == 1:
            self.reads += 1
            values = yield from client.read_stable_many(missing)
            self._cache.update(values)
            return
        # Independent counter groups answer concurrently; a failed
        # shard read (no quorum) fails the whole prefetch, exactly as
        # the unsharded single read would.
        sim = client.runtime.sim
        procs = []
        for shard in sorted(by_shard):
            self.reads += 1
            procs.append(
                sim.process(
                    self._read_shard(by_shard[shard]),
                    name="recovery-read/%d" % shard,
                )
            )
        yield sim.all_of(procs)

    def _read_shard(self, names: List[str]) -> Gen:
        values = yield from self.counter_client.read_stable_many(names)
        self._cache.update(values)

    def __call__(self, log_name: str) -> Gen:
        if log_name not in self._cache:
            yield from self.prefetch([log_name])
        return self._cache[log_name]


class DecisionResolver:
    """Warm a recovering node's decision ledger in one vectored burst.

    Recovery re-adopts every prepared transaction half and spawns one
    resolve fiber each; under ``commit_replication`` a fiber whose
    coordinator stays unreachable falls back to the completer state
    machine, which opens with a decision-query round of its own.  This
    resolver front-loads that work: one DECISION_QUERY per (peer,
    in-doubt transaction), all enqueued in the same instant so the
    transport's doorbell window coalesces them into one sealed frame
    per peer — the decision-ledger analogue of
    :class:`StableCounterResolver`'s vectored quorum read.  Every
    answered record lands in the node's write-once ledger, so resolve
    fibers and completer takeovers start from warmed slots.
    """

    def __init__(self, participant):
        self.participant = participant
        #: decision records actually learned (for tests/metrics).
        self.warmed = 0

    def prefetch(self, txn_ids: Sequence[bytes]) -> Gen:
        part = self.participant
        if not part.replication or not txn_ids:
            return
        sim = part.runtime.sim
        queries: List[bytes] = []
        pairs = []
        for txn_id in txn_ids:
            gid = GlobalTxnId.decode(txn_id)
            for node in sorted(part.addresses):
                if node == part.numeric_id:
                    continue
                queries.append(txn_id)
                pairs.append(
                    (
                        part.addresses[node],
                        TxMessage(
                            MsgType.DECISION_QUERY, gid.node_id,
                            gid.local_seq, part.op_ids(),
                        ),
                    )
                )
        events = part.rpc.broadcast(pairs)
        # Down peers fail fast; bound the round so one slow straggler
        # cannot stall the whole recovery pass.
        yield sim.any_of(
            [
                sim.all_settled(list(events)),
                sim.timeout(RESOLUTION_RETRY_INTERVAL),
            ]
        )
        for txn_id, event in zip(queries, events):
            if not (event.triggered and event.ok):
                continue
            body = getattr(event.value, "body", b"")
            if not body:
                continue
            record = DecisionRecord.decode(body)
            if part.ledger.record(txn_id, record) is record:
                self.warmed += 1


def crash_and_recover(cluster: TreatyCluster, index: int) -> Gen:
    """Fail-stop the node, then run the recovery protocol."""
    cluster.crash_node(index)
    yield from cluster.recover_node(index)


def snapshot_node_disk(cluster: TreatyCluster, index: int) -> DiskSnapshot:
    """Adversary checkpoint of a node's persistent state."""
    return cluster.nodes[index].disk.snapshot()


def rollback_attack(
    cluster: TreatyCluster, index: int, snapshot: DiskSnapshot
) -> Gen:
    """Shut the node down, restore an older disk, restart it.

    Under profiles with stabilization, recovery must raise
    :class:`~repro.errors.FreshnessError` — the trusted counter service
    remembers newer stable values than the rolled-back logs contain.
    """
    cluster.crash_node(index)
    cluster.nodes[index].disk.restore(snapshot)
    yield from cluster.recover_node(index)


def tamper_attack(
    cluster: TreatyCluster,
    index: int,
    filename: str,
    offset: int = 10,
    xor_mask: int = 0x01,
) -> Gen:
    """Crash the node, flip persistent bytes, restart it.

    Under encrypted profiles recovery must raise
    :class:`~repro.errors.IntegrityError`.
    """
    cluster.crash_node(index)
    cluster.nodes[index].disk.tamper(filename, offset, xor_mask)
    yield from cluster.recover_node(index)


def find_log_file(node: TreatyNode, kind: str) -> Optional[str]:
    """Locate a node's current log file by kind ('wal'/'manifest'/'clog')."""
    if kind == "manifest":
        return node.name + "/MANIFEST"
    prefix = "%s/%s-" % (node.name, kind)
    files = node.disk.list_files(prefix)
    return files[-1] if files else None
