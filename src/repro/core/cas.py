"""Configuration and Attestation Service (CAS) + local attestation (§VI).

"Upon startup TREATY bootstraps a CAS on a node in the network to
provide scalable remote attestation and authentication.  For attestation,
the service provider verifies the CAS over Intel Attestation Service
(IAS).  On success the service provider deploys an instance of TREATY's
local attestation service (LAS) on all nodes, verified by the CAS over
IAS.  The LAS replaces the Quoting Enclave, collecting and signing quotes
for all TREATY instances running on the node.  After the CAS verified a
new instance, it supplies the instance with the necessary configuration,
e.g., network key, nodes' IPs, etc."

The expensive IAS round trip therefore happens once per *node* (for its
LAS), not once per enclave start — and never during recovery, which is
the latency win the paper is after.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List

from ..crypto.keys import KeyRing
from ..crypto.signature import VerifyKey, generate_keypair
from ..errors import AttestationError
from ..sim.core import Event
from ..tee.attestation import IntelAttestationService, PlatformQuotingEnclave
from ..tee.runtime import NodeRuntime
from ..tee.sgx import Quote, Report, measure

__all__ = ["LocalAttestationService", "ConfigurationService", "NodeCredentials"]

Gen = Generator[Event, Any, Any]

TREATY_MEASUREMENT = measure("treaty-kv-v1")
LAS_MEASUREMENT = measure("treaty-las-v1")
CAS_MEASUREMENT = measure("treaty-cas-v1")


@dataclass
class NodeCredentials:
    """What an attested Treaty instance receives from the CAS."""

    root_key: bytes
    node_addresses: Dict[str, str]  # node name -> cluster NIC address
    counter_peers: List[str]

    def keyring(self) -> KeyRing:
        return KeyRing(self.root_key)


class LocalAttestationService:
    """Per-node LAS: signs quotes for local Treaty enclaves."""

    def __init__(self, runtime: NodeRuntime, node_name: str, seed: bytes):
        self.runtime = runtime
        self.node_name = node_name
        self._signing, self._verify = generate_keypair(seed, "las/" + node_name)

    @property
    def verify_key(self) -> VerifyKey:
        return self._verify

    def quote_local_enclave(self, measurement: bytes, report_data: bytes) -> Gen:
        """Produce a quote for an enclave running on this node.

        Local attestation is cheap — one signature, no network (this is
        the whole point of replacing the QE/IAS path).
        """
        yield from self.runtime.compute(self.runtime.costs.signature_op)
        return Quote.create(Report(measurement, report_data), self._signing)


class ConfigurationService:
    """The CAS: cluster-wide trust root and configuration distribution."""

    def __init__(
        self,
        runtime: NodeRuntime,
        ias: IntelAttestationService,
        root_key: bytes,
        node_addresses: Dict[str, str],
    ):
        self.runtime = runtime
        self.ias = ias
        self._root_key = root_key
        self._node_addresses = dict(node_addresses)
        self._trusted_las: Dict[str, VerifyKey] = {}
        self._authenticated_clients: set = set()
        self.attested_instances = 0
        self.cas_attested = False
        #: §VI: "CAS can be a single point of failure.  In case CAS
        #: fails, crashed nodes cannot recover."
        self.available = True

    def fail(self) -> None:
        """Take the CAS down (fault injection)."""
        self.available = False

    def restore(self) -> None:
        self.available = True

    # -- bootstrap ----------------------------------------------------------
    def attest_self(self, qe: PlatformQuotingEnclave) -> Gen:
        """The service provider verifies the CAS itself over IAS."""
        quote = Quote.create(Report(CAS_MEASUREMENT, b"cas"), qe.signing_key)
        yield from self.ias.verify_quote(quote, CAS_MEASUREMENT)
        self.cas_attested = True

    def register_las(
        self, las: LocalAttestationService, qe: PlatformQuotingEnclave
    ) -> Gen:
        """Verify one node's LAS over IAS and record its signing key.

        This is the only per-node IAS round trip; every later enclave
        start and recovery is attested locally.
        """
        if not self.cas_attested:
            raise AttestationError("CAS itself has not been attested yet")
        quote = Quote.create(
            Report(LAS_MEASUREMENT, las.verify_key.fingerprint()), qe.signing_key
        )
        yield from self.ias.verify_quote(quote, LAS_MEASUREMENT)
        self._trusted_las[las.node_name] = las.verify_key

    # -- instance attestation -----------------------------------------------------
    def attest_instance(self, node_name: str, quote: Quote) -> Gen:
        """Verify a Treaty instance's LAS-signed quote; return credentials.

        Raises :class:`AttestationError` for unknown nodes, wrong
        measurements (modified code) or bad signatures.
        """
        if not self.available:
            raise AttestationError(
                "CAS unavailable: node %r cannot be attested (and crashed "
                "nodes cannot recover, §VI)" % node_name
            )
        yield from self.runtime.compute(self.runtime.costs.signature_op)
        las_key = self._trusted_las.get(node_name)
        if las_key is None:
            raise AttestationError("node %r has no registered LAS" % node_name)
        quote.verify(las_key, TREATY_MEASUREMENT)
        self.attested_instances += 1
        peers = [
            address
            for name, address in sorted(self._node_addresses.items())
            if name != node_name
        ]
        return NodeCredentials(
            root_key=self._root_key,
            node_addresses=dict(self._node_addresses),
            counter_peers=peers,
        )

    # -- client authentication -------------------------------------------------------
    def authenticate_client(self, client_id: str, secret: bytes) -> Gen:
        """Authenticate a client and admit it to the cluster (§IV-A)."""
        yield from self.runtime.compute(self.runtime.costs.signature_op)
        if not secret or secret == b"wrong":
            raise AttestationError("client %r failed authentication" % client_id)
        self._authenticated_clients.add(client_id)
        return True

    def is_authenticated(self, client_id: str) -> bool:
        return client_id in self._authenticated_clients
