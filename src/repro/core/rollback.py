"""Pluggable rollback-protection backends (§VI, LCM).

Treaty's stabilization contract is narrower than "every transaction runs
its own counter round": an entry must be *covered* by a stable counter
value before the client is acknowledged (acked ⇒ covered ⇒ stable before
externalized).  How coverage is established is a backend decision, and
Brandenburger et al.'s Lightweight Collective Memory (PAPERS.md) shows
the same rollback/forking guarantee is reachable with a much cheaper
echo-only scheme.  This module extracts that decision out of
:class:`~repro.core.stabilization.Stabilizer` /
:class:`~repro.core.trusted_counter.CounterClient` into a
:class:`RollbackProtection` interface with three implementations,
selected by ``ClusterConfig.rollback_backend``:

``counter-sync``
    The original behavior: the caller's fiber (or a driver it spawns)
    runs the full two-leg echo-broadcast protocol — UPDATE/echo quorum,
    then CONFIRM/ack quorum, then seal — and only then releases waiters.
    Maximally conservative; the counter round sits on the commit
    critical path.

``counter-async``
    *Coverage promises*: per-shard background driver fibers run batched
    group rounds on their own cadence.  A transaction's
    ``stabilize_many`` registers its targets and resolves as soon as
    they are ≤ the shard's stable frontier as advanced by an outstanding
    round — it never starts a round of its own.  Waiters release at
    *echo quorum* (the values are then held in a quorum's protected
    memory, which is the rollback-protection point for fail-stop +
    rollback adversaries; recovery reads report echoed values under this
    backend); the CONFIRM leg — which only freshens the replicas'
    sealed state — completes in the background off the critical path.
    Each successful round renews a per-shard *lease*; a promise that
    outlives the lease (driver dead, shard partitioned) falls back to
    exactly one synchronous round driven by the waiter itself.

``lcm``
    LCM-style echo broadcast: round 1 *is* the commit.  Replicas persist
    the echoed values when they echo (``CounterReplica.echo_commit``),
    so there is no CONFIRM leg at all — one broadcast, one quorum, one
    seal per replica.  Coverage promises, leases and the sync fallback
    work exactly as in ``counter-async``.

Safety: all three backends advance the same per-log
:class:`~repro.sim.sync.Gate` frontiers and fire the same
``stabilize/advance`` trace events, which are the *only* stability
source for the I1–I5 monitor and the model checker — so the coverage
backends are checked end-to-end by the existing machinery.  The
``ack-before-covered`` mc mutation (``repro mc explore --mutate
ack-before-covered``) demonstrates the monitor catches a backend that
acks without coverage.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple

from ..config import ClusterConfig
from ..errors import FreshnessError, NetworkError
from ..sim.core import Event
from ..sim.sync import Semaphore
from ..tee.runtime import NodeRuntime
from .trusted_counter import CounterClient, Target

__all__ = [
    "BACKENDS",
    "RollbackProtection",
    "CounterSyncBackend",
    "CounterAsyncBackend",
    "LcmBackend",
    "DecisionLedger",
    "make_backend",
]

Gen = Generator[Event, Any, Any]

#: selectable values of ``ClusterConfig.rollback_backend``.
BACKENDS = ("counter-sync", "counter-async", "lcm")


class RollbackProtection:
    """Interface: make ``(log, counter)`` targets rollback-protected.

    Implementations share the :class:`CounterClient`'s per-log gates as
    the stable frontier, so ``stable_value`` and the monitor's view are
    backend-independent.
    """

    name = "abstract"

    def __init__(self, runtime: NodeRuntime, client: CounterClient):
        self.runtime = runtime
        self.client = client
        self.tracer = runtime.tracer

    def stabilize(self, log_name: str, value: int) -> Gen:
        """Block until ``log_name``'s counter is stable at >= ``value``."""
        yield from self.stabilize_many([(log_name, value)])

    def stabilize_many(self, targets: Sequence[Target]) -> Gen:
        raise NotImplementedError

    def stable_value(self, log_name: str) -> int:
        return self.client.stable_value(log_name)


class CounterSyncBackend(RollbackProtection):
    """Today's behavior: callers drive (or join) a synchronous round and
    wait out both protocol legs before being released."""

    name = "counter-sync"

    def stabilize(self, log_name: str, value: int) -> Gen:
        yield from self.client.stabilize(log_name, value)

    def stabilize_many(self, targets: Sequence[Target]) -> Gen:
        yield from self.client.stabilize_many(targets)


class CounterAsyncBackend(RollbackProtection):
    """Coverage promises: background per-shard drivers, lease-gated waits.

    Per shard, the backend keeps a persistent driver fiber woken by a
    :class:`Semaphore` (no polling — the sim stays quiescent when idle).
    The driver snapshots unclaimed pending targets, claims them, and
    spawns up to ``counter_max_inflight`` concurrent protocol rounds —
    pipelining removes the "wait for the previous round to finish"
    pickup latency that serializes the sync driver.  Rounds release
    waiters at echo quorum and renew the shard lease on success.

    A waiter whose promise outlives ``max(lease_until, entry + lease)``
    runs :meth:`CounterClient.drive_until_stable` itself — exactly one
    synchronous fallback per expired promise — so a partitioned or dead
    driver degrades to the sync backend's semantics instead of hanging.
    """

    name = "counter-async"
    #: run the CONFIRM leg (in the background).  The LCM subclass drops it.
    confirm = True
    background_confirm = True

    def __init__(
        self,
        runtime: NodeRuntime,
        client: CounterClient,
        config: ClusterConfig,
    ):
        super().__init__(runtime, client)
        self.lease_s = config.counter_lease_s
        self.max_inflight = max(1, config.counter_max_inflight)
        shards = client.num_shards
        #: test hook: park the drivers to force the lease-expiry path.
        self.drivers_enabled = True
        self._dead = False
        self._wake = [Semaphore(runtime.sim) for _ in range(shards)]
        self._round_done = [Semaphore(runtime.sim) for _ in range(shards)]
        self._claimed: List[Dict[str, int]] = [{} for _ in range(shards)]
        self._inflight = [0] * shards
        #: per-shard lease expiry (sim time); renewed by each successful
        #: round.  Together with the client's boot ``epoch`` this stamps
        #: the shard's stable frontier: (epoch, lease_until, gates).
        self.lease_until = [0.0] * shards
        self.promises = 0
        self.covered = 0
        self.sync_fallbacks = 0
        metrics = runtime.metrics
        self._covered_metric = metrics.counter("counter.covered")
        self._lease_renewals = metrics.counter("counter.lease.renewals")
        self._lease_expiries = metrics.counter("counter.lease.expired")
        metrics.probe("counter.sync_fallbacks", lambda: self.sync_fallbacks)
        for shard in range(shards):
            runtime.sim.process(
                self._drive(shard), name="rollback-driver/%d" % shard
            )

    # -- the waiter side ----------------------------------------------------
    def stabilize_many(self, targets: Sequence[Target]) -> Gen:
        client = self.client
        needed = [
            (log_name, value)
            for log_name, value in targets
            if client._gate(log_name).value < value
        ]
        if not needed:
            return
        by_shard: Dict[int, List[Target]] = {}
        for log_name, value in needed:
            shard = client._register(log_name, value, spawn_driver=False)
            by_shard.setdefault(shard, []).append((log_name, value))
        self.promises += 1
        if self.tracer.enabled:
            self.tracer.event(
                "counter", "promise", node=client.replica.node_name,
                epoch=client.epoch, shards=sorted(by_shard),
                targets=len(needed),
                logs=sorted(log for log, _ in needed),
            )
        for shard in by_shard:
            self._wake[shard].release()
        # Rounds for every shard are in flight now; awaiting them in
        # shard order only affects when we *notice* coverage.
        for shard in sorted(by_shard):
            yield from self._await_coverage(shard, by_shard[shard])
        self.covered += len(needed)
        self._covered_metric.inc(len(needed))

    def _await_coverage(self, shard: int, targets: List[Target]) -> Gen:
        sim = self.runtime.sim
        client = self.client
        # A fresh promise gets a full lease of grace even if the shard
        # has never run a round (lease_until still 0 at boot).
        grace = sim.now + self.lease_s
        while True:
            waits = [
                client._gate(log_name).wait_for(value)
                for log_name, value in targets
                if client._gate(log_name).value < value
            ]
            if not waits:
                return
            deadline = max(self.lease_until[shard], grace)
            if sim.now >= deadline:
                # The promise outlived the lease: the driver is dead,
                # parked, or the shard quorum is unreachable.  Run
                # exactly one synchronous fallback ourselves.
                self._lease_expiries.inc()
                self.sync_fallbacks += 1
                if self.tracer.enabled:
                    self.tracer.event(
                        "counter", "lease", node=client.replica.node_name,
                        epoch=client.epoch, shard=shard, state="expired",
                        targets=len(targets),
                    )
                yield from client.drive_until_stable(
                    targets, shard=shard, confirm=self.confirm,
                    release_at_echo=True,
                    background_confirm=self.background_confirm,
                )
                return
            yield sim.any_of(
                [sim.all_of(waits), sim.timeout(deadline - sim.now)]
            )

    # -- the driver side ----------------------------------------------------
    def _fresh_targets(self, shard: int) -> List[Target]:
        claimed = self._claimed[shard]
        return [
            (log_name, value)
            for log_name, value in self.client._pending_snapshot(shard)
            if value > claimed.get(log_name, 0)
        ]

    def _drive(self, shard: int) -> Gen:
        """Persistent driver fiber: claim fresh targets, pipeline rounds."""
        sim = self.runtime.sim
        while not self._dead:
            if not self.drivers_enabled:
                yield self._wake[shard].acquire()
                continue
            fresh = self._fresh_targets(shard)
            if not fresh:
                yield self._wake[shard].acquire()
                continue
            if self._inflight[shard] >= self.max_inflight:
                yield self._round_done[shard].acquire()
                continue
            claimed = self._claimed[shard]
            for log_name, value in fresh:
                claimed[log_name] = max(claimed.get(log_name, 0), value)
            self._inflight[shard] += 1
            sim.process(
                self._round(shard, fresh), name="rollback-round/%d" % shard
            )

    def _round(self, shard: int, targets: List[Target]) -> Gen:
        client = self.client
        failed = False
        try:
            yield from client._run_protocol(
                targets, shard=shard, confirm=self.confirm,
                release_at_echo=True,
                background_confirm=self.background_confirm,
            )
        except FreshnessError:
            # Quorum unreachable this round.  Back off before releasing
            # the claim so redrives pace at the retry cadence; do NOT
            # wake the driver — retries are pulled by new registrations
            # or by a waiter's lease-expiry fallback, which bounds a
            # partitioned shard's retry traffic.
            failed = True
            yield self.runtime.sim.timeout(client.retry_backoff)
        except NetworkError:
            # NIC detached: this node crashed and we are a zombie.  Stop
            # driving — the recovered incarnation builds its own backend.
            failed = True
            self._dead = True
        finally:
            self._inflight[shard] -= 1
            claimed = self._claimed[shard]
            for log_name, value in targets:
                if claimed.get(log_name, 0) <= value:
                    claimed.pop(log_name, None)
            self._round_done[shard].release()
            if not failed:
                self._renew_lease(shard)
                # Pending may have been raised past our claim meanwhile.
                self._wake[shard].release()

    def _renew_lease(self, shard: int) -> None:
        self.lease_until[shard] = self.runtime.sim.now + self.lease_s
        self._lease_renewals.inc()


class LcmBackend(CounterAsyncBackend):
    """LCM-style echo broadcast: one leg, the echo is the commit.

    Inherits the whole coverage-promise machinery; the only difference
    is the round shape — no CONFIRM leg, replicas seal at echo time
    (``CounterReplica.echo_commit``), the sender seals its own state
    after the quorum.
    """

    name = "lcm"
    confirm = False
    background_confirm = False


class DecisionLedger:
    """Write-once per-transaction decision slots (``commit_replication``).

    The non-blocking commit extension replicates the coordinator's
    commit/abort decision across the cluster before the client is
    acknowledged; this ledger is one node's slot store.  Slots live in
    the enclave's protected memory — the same trust model as the counter
    replicas' echo memory: a value held by a quorum of live enclaves is
    rollback-protected, and the coordinator's own slot is additionally
    durable through its Clog entry.

    Slots are *write-once*: the first record for a transaction wins and
    every later write of a conflicting kind is rejected (the caller
    learns the stored record instead).  Because slots never change, the
    quorum conditions below are monotone — once a kind reaches its
    quorum it stays there, and every evaluator converges on the same
    outcome:

    * **commit is final** once ``commit_quorum`` (a majority) of slots
      hold a COMMIT record — only then may the client be acknowledged;
    * **abort is final** once ``abort_quorum`` slots hold ABORT: that
      many conflicting slots make the commit quorum arithmetically
      unreachable, and presumed abort makes aborting safe for any
      transaction that was never acknowledged.

    The two thresholds overlap (``commit_quorum + abort_quorum = n + 1``),
    so at most one outcome can ever become final.
    """

    def __init__(self, num_nodes: int):
        self.num_nodes = num_nodes
        #: gid bytes -> decision record (duck-typed: anything with a
        #: ``.kind`` attribute; :class:`~repro.core.twopc.DecisionRecord`).
        self.slots: Dict[bytes, Any] = {}
        #: slots written by a remote record (metric feed).
        self.replicated = 0

    def install_metrics(self, metrics) -> None:
        """Expose live slot occupancy (``decision.slots``) as a probe.

        Slots are enclave memory that persists for the deployment's
        lifetime, so the gauge doubles as a leak watch: it should track
        committed-transaction count, never run ahead of it.
        """
        metrics.probe("decision.slots", lambda: len(self.slots))

    @property
    def commit_quorum(self) -> int:
        """Majority of all nodes (the coordinator's slot counts)."""
        return self.num_nodes // 2 + 1

    @property
    def abort_quorum(self) -> int:
        """Enough conflicting slots to make commit unreachable."""
        return self.num_nodes - self.commit_quorum + 1

    def record(self, gid_bytes: bytes, record) -> Any:
        """Write-once store; returns the record the slot holds now."""
        existing = self.slots.get(gid_bytes)
        if existing is not None:
            return existing
        self.slots[gid_bytes] = record
        return record

    def get(self, gid_bytes: bytes):
        return self.slots.get(gid_bytes)


def make_backend(
    runtime: NodeRuntime,
    client: Optional[CounterClient],
    config: ClusterConfig,
) -> Optional[RollbackProtection]:
    """Build the configured rollback-protection backend for one node."""
    if client is None:
        return None
    name = config.rollback_backend
    if name == "counter-sync":
        return CounterSyncBackend(runtime, client)
    if name == "counter-async":
        return CounterAsyncBackend(runtime, client, config)
    if name == "lcm":
        return LcmBackend(runtime, client, config)
    raise ValueError(
        "unknown rollback_backend %r (expected one of %s)"
        % (name, ", ".join(BACKENDS))
    )
