"""A Treaty node: the full per-node stack of Figure 1.

Assembles the trusted components (Tx layer, lock manager, Tx KV engine,
counter enclave) inside the node's enclave runtime, and the untrusted
components (disk, NICs) outside it.  Nodes can :meth:`crash` (volatile
state lost, disk kept) and :meth:`recover` (local re-attestation via the
LAS, log replay, freshness checks, prepared-transaction resolution).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Generator, Optional

from ..config import ClusterConfig, EnvProfile
from ..errors import FreshnessError, NetworkError
from ..net.erpc import ErpcEndpoint
from ..net.message import MsgType, TxMessage
from ..net.secure_rpc import SecureRpc
from ..net.simnet import Fabric
from ..sim.core import Event, Simulator
from ..storage.disk import Disk
from ..storage.engine import LSMEngine
from ..storage.log import SecureLog
from ..storage.manifest import ManifestEdit
from ..tee.attestation import PlatformQuotingEnclave
from ..tee.runtime import NodeRuntime
from ..tee.sgx import SealingKey
from ..txn.locks import LockMode
from ..txn.manager import TransactionManager
from ..txn.types import TxnStatus
from .cas import (
    ConfigurationService,
    LocalAttestationService,
    NodeCredentials,
    TREATY_MEASUREMENT,
)
from .client import FrontEnd
from .ids import GlobalTxnId
from .pipeline import DurabilityPipeline
from .rollback import DecisionLedger
from .stabilization import Stabilizer
from .trusted_counter import CounterClient, CounterReplica, decode_counter_vector
from .twopc import (
    RESOLUTION_RETRY_INTERVAL,
    ClogRecord,
    Coordinator,
    DecisionRecord,
    GlobalTxn,
    Participant,
)

__all__ = ["TreatyNode"]

Gen = Generator[Event, Any, Any]

_RESOLUTION_OP_BASE = 1 << 60


class TreatyNode:
    """One server of the cluster, with crash/recover lifecycle."""

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        name: str,
        numeric_id: int,
        profile: EnvProfile,
        config: ClusterConfig,
        platform_secret: bytes,
        addresses: Dict[int, str],
        partitioner: Callable[[bytes], int],
    ):
        self.sim = sim
        self.fabric = fabric
        self.name = name
        self.numeric_id = numeric_id
        self.profile = profile
        self.config = config
        self.platform_secret = platform_secret
        self.addresses = addresses
        self.partitioner = partitioner
        #: persistent state — survives crashes.
        self.disk = Disk(name)
        self.qe = PlatformQuotingEnclave(name, platform_secret)
        self.las: Optional[LocalAttestationService] = None
        self.boot_count = 0
        self._clog_seq = 1
        self.cluster_address = name
        self.front_address = name + ".front"
        self.is_up = False
        self._resolution_ops = itertools.count(1)
        # Volatile components (built at start/recover).
        self.runtime: Optional[NodeRuntime] = None
        self.engine: Optional[LSMEngine] = None
        self.manager: Optional[TransactionManager] = None
        self.coordinator: Optional[Coordinator] = None
        self.participant: Optional[Participant] = None
        self.frontend: Optional[FrontEnd] = None
        self.counter_client: Optional[CounterClient] = None
        self.pipeline: Optional[DurabilityPipeline] = None
        self.rollback = None  # Optional[RollbackProtection], set by _build
        self.stabilizer: Optional[Stabilizer] = None
        self.ledger: Optional[DecisionLedger] = None
        self.clog: Optional[SecureLog] = None

    # -- attestation ----------------------------------------------------------
    def _attest(self, cas: ConfigurationService) -> Gen:
        """LAS-signed quote, verified by the CAS (no IAS round trip)."""
        if self.las is None:
            raise RuntimeError("node %s has no deployed LAS" % self.name)
        quote = yield from self.las.quote_local_enclave(
            TREATY_MEASUREMENT, self.name.encode()
        )
        credentials = yield from cas.attest_instance(self.name, quote)
        return credentials

    # -- construction ------------------------------------------------------------
    def _build(self, credentials: NodeCredentials) -> None:
        self.boot_count += 1
        self.runtime = NodeRuntime(
            self.sim, self.profile, self.config, name=self.name
        )
        if self.sim.obs is not None:
            # Re-registering after recovery replaces the dead runtime's
            # registry in the hub.
            self.sim.obs.hub.add(self.name, self.runtime.metrics)
        self.keyring = credentials.keyring()
        cluster_nic = self.fabric.attach(
            self.cluster_address,
            self.config.costs.net_bandwidth,
            self.config.costs.net_propagation,
        )
        front_nic = self.fabric.attach(
            self.front_address,
            self.config.costs.client_bandwidth,
            self.config.costs.client_propagation,
        )
        self.cluster_endpoint = ErpcEndpoint(self.runtime, self.fabric, cluster_nic)
        self.front_endpoint = ErpcEndpoint(self.runtime, self.fabric, front_nic)
        self.cluster_rpc = SecureRpc(
            self.runtime, self.cluster_endpoint, self.keyring,
            self.numeric_id, epoch=self.boot_count,
        )
        self.front_rpc = SecureRpc(
            self.runtime, self.front_endpoint, self.keyring,
            self.numeric_id, epoch=self.boot_count,
        )
        sealing = SealingKey(self.platform_secret, TREATY_MEASUREMENT)
        self.replica = CounterReplica(
            self.runtime, self.cluster_rpc, self.disk, sealing, self.name
        )
        self.counter_client = CounterClient(
            self.runtime,
            self.cluster_rpc,
            self.replica,
            credentials.counter_peers,
            self.config.counter_quorum,
            self.numeric_id,
            epoch=self.boot_count,
        )
        self.pipeline = DurabilityPipeline(
            self.runtime, self.counter_client, self.config
        )
        # The rollback-protection backend (sync / coverage promises /
        # LCM) is rebuilt on every boot: a recovered incarnation gets
        # fresh per-shard drivers and leases while the crashed
        # incarnation's zombie fibers die on their detached NIC.
        self.rollback = self.pipeline.rollback
        self.stabilizer = self.pipeline.stabilizer
        # Decision slots are enclave memory: volatile, rebuilt each
        # boot.  A crash forgets them — the quorum of *surviving*
        # holders is what keeps a replicated decision alive, the same
        # trust shape as the counter protocol's echo memory.  Shared
        # between the node's Coordinator and Participant roles so the
        # coordinator's own slot counts toward the quorum.
        self.ledger = DecisionLedger(self.config.num_nodes)
        self.ledger.install_metrics(self.runtime.metrics)
        if self.config.storage_engine == "null":
            from ..storage.nullengine import NullStorageEngine

            self.engine = NullStorageEngine(self.runtime, name=self.name)
        else:
            self.runtime.heavy_enclave = True
            self.engine = LSMEngine(
                self.runtime,
                self.disk,
                self.keyring,
                self.config,
                name=self.name,
                stabilizer=self.stabilizer if self.profile.stabilization else None,
            )
        self.manager = TransactionManager(
            self.runtime,
            self.engine,
            self.config,
            stabilizer=self.stabilizer,
            name=self.name,
            pipeline=self.pipeline,
        )

    def _wire_roles(self) -> None:
        self.coordinator = Coordinator(
            self.runtime,
            self.manager,
            self.cluster_rpc,
            self.clog,
            self.numeric_id,
            self.addresses,
            self.partitioner,
            self.stabilizer,
            epoch=self.boot_count,
            pipeline=self.pipeline,
            ledger=self.ledger,
        )
        self.participant = Participant(
            self.runtime,
            self.manager,
            self.cluster_rpc,
            self.stabilizer,
            numeric_id=self.numeric_id,
            addresses=self.addresses,
            pipeline=self.pipeline,
            ledger=self.ledger,
            op_ids=self._resolution_op_id,
        )
        self.frontend = FrontEnd(
            self.runtime, self.coordinator, self.manager, self.front_rpc,
            participant=self.participant,
        )

    @property
    def clog_path(self) -> str:
        return "%s/clog-%06d.log" % (self.name, self._clog_seq)

    def rotate_clog(self) -> Gen:
        """Garbage-collect the coordinator log (§V-A / §VII-B).

        "The Clog is deleted as long as there are no unstable entries
        and does not contain any unfinished prepared transaction entry."
        Unresolved protocol state (undecided prepares, commits whose
        completion is unrecorded) is carried into the fresh Clog; the
        old file is deleted once the MANIFEST edits recording the
        rotation are stabilized.
        """
        if self.config.storage_engine == "null":
            return
        old_clog = self.clog
        # Determine which 2PC state must survive into the new log.
        entries = yield from old_clog.replay()
        prepares: Dict[bytes, ClogRecord] = {}
        undone_commits: Dict[bytes, ClogRecord] = {}
        for _counter, payload in entries:
            record = ClogRecord.decode(payload)
            key = record.gid.encode()
            if record.kind == ClogRecord.PREPARE:
                prepares[key] = record
            elif record.kind == ClogRecord.COMPLETE:
                undone_commits.pop(key, None)
            elif record.kind == ClogRecord.COMMIT:
                prepares.pop(key, None)
                undone_commits[key] = record
            else:  # ABORT — may supersede an unacknowledged COMMIT
                # whose decision quorum turned out unreachable.
                prepares.pop(key, None)
                undone_commits.pop(key, None)

        self._clog_seq += 1
        new_clog = SecureLog(
            self.runtime, self.disk, self.clog_path, self.keyring,
            log_name=self.clog_path,
        )
        for record in list(prepares.values()) + list(undone_commits.values()):
            yield from new_clog.append(record.encode())
        yield from self.engine.manifest.record(
            ManifestEdit.new_log("clog", new_clog.filename)
        )
        counter = yield from self.engine.manifest.record(
            ManifestEdit.del_log("clog", old_clog.filename)
        )
        self.clog = new_clog
        if self.coordinator is not None:
            self.coordinator.clog = new_clog

        old_filename = old_clog.filename

        def gc():
            if self.stabilizer is not None and self.stabilizer.enabled:
                yield from self.stabilizer(
                    self.engine.manifest_log_name, counter
                )
                yield from self.stabilizer(
                    new_clog.log_name, new_clog.last_counter
                )
            else:
                yield self.sim.timeout(0.05)
            self.disk.delete(old_filename)

        self.sim.process(gc(), name="clog-gc@%s" % self.name)

    # -- lifecycle -----------------------------------------------------------------
    def start(self, cas: ConfigurationService) -> Gen:
        """First boot: attest, initialize an empty engine, wire the roles."""
        credentials = yield from self._attest(cas)
        self._build(credentials)
        if self.config.storage_engine == "null":
            from ..storage.nullengine import NullLog

            self.clog = NullLog(self.runtime, self.clog_path)
        else:
            yield from self.engine.bootstrap()
            self.pipeline.witness.advance_floor(self.engine.current_seq())
            self.clog = SecureLog(
                self.runtime, self.disk, self.clog_path, self.keyring,
                log_name=self.clog_path,
            )
            yield from self.engine.manifest.record(
                ManifestEdit.new_log("clog", self.clog_path)
            )
        self._wire_roles()
        self.is_up = True

    def crash(self) -> None:
        """Fail-stop: lose everything volatile, keep the disk (§III)."""
        if self.sim.tracer is not None:
            self.sim.tracer.event(
                "node", "crash", node=self.name, node_id=self.numeric_id
            )
        self.fabric.detach(self.cluster_address)
        self.fabric.detach(self.front_address)
        self.is_up = False

    # -- recovery (§VI) ----------------------------------------------------------------
    def recover(self, cas: ConfigurationService) -> Gen:
        """Rebuild from the untrusted disk, verifying integrity+freshness."""
        if self.is_up:
            # Recovery implies a restart: tear down volatile state first.
            self.crash()
        credentials = yield from self._attest(cas)
        self._build(credentials)

        # Root span of the recovery's span DAG: the synthetic trace id
        # (high bit set — can never collide with a transaction's id)
        # groups log replay, fencing, and every resolution/redrive fiber
        # spawned below, across every node they touch.
        recovery_trace = GlobalTxnId(
            (1 << 63) | self.numeric_id, self.boot_count
        ).encode().hex()
        recovery_span = None
        if self.sim.tracer is not None and self.sim.tracer.enabled:
            recovery_span = self.sim.tracer.span(
                "node", "recover", node=self.name, trace=recovery_trace,
                parent=0, epoch=self.boot_count,
            )

        resolver = None
        if self.profile.stabilization:
            # Import here: repro.core.recovery imports the cluster module
            # (for the attack helpers), which imports this one.
            from .recovery import StableCounterResolver

            resolver = StableCounterResolver(self.counter_client)

        state, prepared_ids = yield from self.engine.recover(resolver)
        # Recovery replays only the stable WAL prefix: every seq the
        # recovered snapshot exposes is already rollback-protected.
        self.pipeline.witness.advance_floor(self.engine.current_seq())

        # Clog: replay the 2PC state (§VI "Lastly, Clog is replayed").
        clog_path = state.live_clogs[-1] if state.live_clogs else self.clog_path
        stem = clog_path.rsplit("/", 1)[1]
        if stem.startswith("clog-"):
            self._clog_seq = max(self._clog_seq, int(stem[5:11]))
        self.clog = SecureLog(
            self.runtime, self.disk, clog_path, self.keyring, log_name=clog_path
        )
        # Clog: like the MANIFEST, the full authenticated chain is
        # replayed (an unstable suffix can only contain undecided or
        # unacknowledged protocol state, which recovery handles the same
        # either way); freshness is still enforced against the counter.
        if resolver is not None:
            clog_stable = yield from resolver(clog_path)
            if self.clog.on_disk_max_counter() < clog_stable:
                raise FreshnessError(
                    "Clog rolled back: %d on disk, %d stable"
                    % (self.clog.on_disk_max_counter(), clog_stable)
                )
        clog_entries = yield from self.clog.replay()
        self.clog.reset_from_replay(clog_entries)
        self._wire_roles()

        # Fence the pre-crash epoch: peers abort this coordinator's
        # never-prepared transaction halves (nothing on any disk records
        # them, so Clog replay below cannot resolve them — without the
        # fence their locks would be held forever).
        self.sim.process(self._fence_peers(), name="fence@%s" % self.name)

        # Rebuild coordinator decisions; find unresolved prepares and
        # commits whose completion was never recorded.
        seen_prepares: Dict[bytes, ClogRecord] = {}
        incomplete_commits: Dict[bytes, ClogRecord] = {}
        decided_aborts: Dict[bytes, ClogRecord] = {}
        for counter, payload in clog_entries:
            record = ClogRecord.decode(payload)
            key = record.gid.encode()
            if record.kind == ClogRecord.PREPARE:
                seen_prepares[key] = record
            elif record.kind == ClogRecord.COMPLETE:
                incomplete_commits.pop(key, None)
            else:
                self.coordinator.decisions[key] = (
                    record.kind, counter, tuple(record.targets)
                )
                seen_prepares.pop(key, None)
                if record.kind == ClogRecord.COMMIT:
                    incomplete_commits[key] = record
                else:
                    # An ABORT can supersede an earlier COMMIT whose
                    # decision quorum proved unreachable (the later
                    # entry wins; only the abort was ever observable).
                    incomplete_commits.pop(key, None)
                    decided_aborts[key] = record

        # Warm the fresh decision ledger with one vectored query burst
        # before any resolve fiber runs: completer fallbacks then start
        # from learned slots instead of cold query rounds.
        if self.participant.replication and prepared_ids:
            from .recovery import DecisionResolver

            yield from DecisionResolver(self.participant).prefetch(
                sorted(prepared_ids)
            )

        # Re-adopt prepared participant-local transactions (§VI: "each
        # node will re-initialize all prepared Txs that are not yet
        # committed") and resolve them with their coordinators.
        for txn_id in prepared_ids:
            writes = self.engine.prepared_txns[txn_id]
            txn = yield from self._adopt_prepared(txn_id, writes)
            self.sim.process(
                self._resolve_prepared(txn_id, txn),
                name="resolve@%s" % self.name,
            )

        # Coordinator half: undecided transactions are presumed aborted
        # (their decision was never stable, so no client saw success);
        # decided-commit transactions are re-driven so participants that
        # crashed mid-commit converge ("if a node has already committed
        # the Tx, this message is ignored").
        for key, record in seen_prepares.items():
            self.sim.process(
                self._abort_undecided(record), name="re-abort@%s" % self.name
            )
        for key, record in incomplete_commits.items():
            self.sim.process(
                self._redrive_commit(record), name="re-commit@%s" % self.name
            )
        for key, record in decided_aborts.items():
            self.sim.process(
                self._redrive_abort(record), name="re-abort@%s" % self.name
            )
        self.is_up = True
        if self.sim.tracer is not None:
            self.sim.tracer.event(
                "node", "recover_done", node=self.name,
                prepared=sorted(txn_id.hex() for txn_id in prepared_ids),
                redriven=len(incomplete_commits),
            )
        if recovery_span is not None:
            recovery_span.close(
                prepared=len(prepared_ids), redriven=len(incomplete_commits)
            )
        return state

    # -- recovery helpers ---------------------------------------------------------
    def _adopt_prepared(self, txn_id: bytes, writes) -> Gen:
        txn = self.manager.begin_pessimistic(txn_id=txn_id)
        for key, value, _seq in writes:
            yield from self.manager.locks.acquire(
                txn_id, key, LockMode.EXCLUSIVE, timeout=10.0
            )
            txn.buffer.record(key, value)
        txn.status = TxnStatus.PREPARED
        self.participant.active[txn_id] = txn
        return txn

    def _resolution_op_id(self) -> int:
        # The replay guard dedups on (node, txn, op) where node/txn name
        # the *coordinator's* transaction — but resolution op ids are
        # allocated by the *asking* node.  Two recovered participants at
        # the same boot epoch asking about the same transaction would
        # otherwise mint identical triples, and the coordinator would
        # drop the second genuine query as a replay (leaving that
        # participant's prepared half, and its locks, parked forever).
        # Folding the asker's id into the op makes the triple unique.
        return (
            _RESOLUTION_OP_BASE
            | (self.numeric_id << 50)
            | (self.boot_count << 40)
            | next(self._resolution_ops)
        )

    def _resolution_message(self, msg_type: int, gid: GlobalTxnId) -> TxMessage:
        return TxMessage(
            msg_type, gid.node_id, gid.local_seq, self._resolution_op_id()
        )

    def _fence_peers(self) -> Gen:
        """Tell every peer this node's pre-crash epoch is dead.

        Best effort with bounded retries: a peer that is itself down
        lost the orphaned volatile state the fence targets anyway, so
        there is nothing to fence once it recovers.
        """
        if self.sim.tracer is not None:
            self.sim.tracer.event(
                "twopc", "fence", node=self.name, epoch=self.boot_count
            )
        pending = {
            node for node in self.addresses if node != self.numeric_id
        }
        for _attempt in range(10):
            if not pending:
                return
            ordered = sorted(pending)
            fences = self.cluster_rpc.broadcast(
                [
                    (
                        self.addresses[node],
                        TxMessage(
                            MsgType.TXN_FENCE,
                            self.numeric_id,
                            self.boot_count,
                            self._resolution_op_id(),
                        ),
                    )
                    for node in ordered
                ]
            )
            events = dict(zip(ordered, fences))
            round_start = self.sim.now
            yield self.sim.any_of(
                [
                    self.sim.all_settled(list(events.values())),
                    self.sim.timeout(RESOLUTION_RETRY_INTERVAL),
                ]
            )
            for node, event in events.items():
                if event.triggered and event.ok:
                    pending.discard(node)
            if pending:
                # A crashed peer fails its fence instantly; pace the
                # retry so ten attempts span real time instead of one
                # same-instant burst.
                remainder = RESOLUTION_RETRY_INTERVAL - (
                    self.sim.now - round_start
                )
                if remainder > 0.0:
                    yield self.sim.timeout(remainder)

    def _resolve_prepared(self, txn_id: bytes, txn) -> Gen:
        """Ask the coordinator how a recovered prepared txn was decided."""
        gid = GlobalTxnId.decode(txn_id)
        if gid.node_id == self.numeric_id:
            if self.participant.replication:
                # This node's own Clog decision is necessary but no
                # longer sufficient: a COMMIT whose replication round
                # never reached quorum may have been superseded by a
                # completer abort quorum while this node was down.  The
                # completer state machine re-derives the final outcome
                # from the slot quorum (the redrive fiber re-confirms
                # the decision and drives the group in parallel; the
                # active-entry pop keeps the apply exactly-once).
                yield from self.participant.complete(txn_id)
                return
            decision, _, _ = self.coordinator.decisions.get(
                txn_id, (ClogRecord.ABORT, 0, ())
            )
            commit = decision == ClogRecord.COMMIT
        else:
            # The coordinator may itself be down.  Without decision
            # replication its answer is the only safe way to decide, so
            # retry until it is reachable; with replication a quorum of
            # peers holds the decision, so once the decision timeout
            # elapses hand the transaction to the completer state
            # machine instead of blocking on a dead coordinator.
            deadline = self.sim.now + self.config.decision_timeout_s
            while True:
                try:
                    reply = yield from self.cluster_rpc.call(
                        self.addresses[gid.node_id],
                        self._resolution_message(MsgType.TXN_RESOLVE, gid),
                    )
                except NetworkError:
                    if (
                        self.participant.replication
                        and self.sim.now >= deadline
                    ):
                        yield from self.participant.complete(txn_id)
                        return
                    yield self.sim.timeout(RESOLUTION_RETRY_INTERVAL)
                    continue
                break
            commit = reply.body == b"commit"
        if self.participant.active.pop(txn_id, None) is None:
            # A coordinator redrive resolved this transaction while the
            # query was in flight (the coordinator can recover and
            # re-broadcast concurrently with our retries).  Whoever pops
            # the active entry applies the outcome — exactly once.
            return
        if commit:
            yield from txn.commit_prepared_async()
        else:
            yield from txn.abort_prepared()
        if self.sim.tracer is not None:
            self.sim.tracer.event(
                "twopc", "prepared_resolved", node=self.name,
                txn=txn_id.hex(), outcome="commit" if commit else "abort",
            )

    def _abort_undecided(self, record: ClogRecord) -> Gen:
        counter = yield from self.coordinator.log_clog(
            ClogRecord(ClogRecord.ABORT, record.gid, record.participants)
        )
        self.stabilizer.background(self.clog.log_name, counter)
        yield from self._broadcast_resolution(MsgType.TXN_ABORT, record)

    def _redrive_abort(self, record: ClogRecord) -> Gen:
        """Re-instruct participants of a decided-abort transaction.

        Aborts log no COMPLETE record (presumed abort), so recovery
        re-broadcasts every one: the pre-crash coordinator may have
        logged the ABORT decision but died before any participant heard
        it, and their prepared halves (with their locks) would wait
        forever.  Participants that already aborted — or never heard of
        the transaction — acknowledge and ignore the duplicate.
        """
        yield from self._broadcast_resolution(MsgType.TXN_ABORT, record)

    def _redrive_commit(self, record: ClogRecord) -> Gen:
        """Re-instruct participants of a decided-commit transaction.

        Participants that already committed ignore the message; ones
        that recovered with the transaction still prepared commit it.
        The decision entry may sit in the replayed Clog's unstable
        suffix (the pre-crash coordinator logged it but died before
        stabilizing), so it is stabilized before any participant is
        told to commit — together with any piggybacked prepare targets
        the pre-crash coordinator collected but never saw stabilized
        (a participant may hold its matching prepare record in *its*
        unstable WAL suffix, waiting on exactly this round).

        Under decision replication the redrive first *re-confirms* the
        decision quorum: while this coordinator was down a completer
        abort quorum may have formed (a COMMIT entry whose replication
        round never reached quorum is unobservable — no client saw it
        succeed), in which case the cluster already converged on abort
        and the redrive logs a superseding ABORT and follows.
        """
        if self.coordinator.replication:
            key = record.gid.encode()
            _kind, counter, targets = self.coordinator.decisions.get(
                key,
                (ClogRecord.COMMIT, self.clog.last_counter,
                 tuple(record.targets)),
            )
            decision = DecisionRecord(
                ClogRecord.COMMIT, record.gid, list(record.participants),
                list(targets), self.clog.log_name, counter,
                self.numeric_id,
            )
            replicated = yield from self.coordinator._replicate_decision(
                decision, key.hex(), phase="redrive"
            )
            if not replicated:
                superseded = yield from self.coordinator.log_clog(
                    ClogRecord(
                        ClogRecord.ABORT, record.gid, record.participants
                    )
                )
                self.stabilizer.background(self.clog.log_name, superseded)
                yield from self._broadcast_resolution(
                    MsgType.TXN_ABORT, record
                )
                return
        elif self.profile.stabilization:
            if record.targets and self.pipeline is not None:
                yield from self.pipeline.stabilize_group(
                    list(record.targets)
                    + [(self.clog.log_name, self.clog.last_counter)],
                    txn=record.gid.encode().hex(), phase="redrive",
                )
            else:
                yield from self.stabilizer(
                    self.clog.log_name, self.clog.last_counter
                )
        replies = yield from self._broadcast_resolution(
            MsgType.TXN_COMMIT, record
        )
        # Apply-side targets piggybacked on the re-driven COMMIT ACKs
        # still deserve stabilization (off the critical path).
        apply_targets = []
        for reply in replies:
            if getattr(reply, "body", b""):
                apply_targets.extend(decode_counter_vector(reply.body))
        if apply_targets and self.pipeline is not None:
            yield from self.pipeline.stabilize_group(
                apply_targets,
                txn=record.gid.encode().hex(), phase="redrive-apply",
            )

    def _broadcast_resolution(self, msg_type: int, record: ClogRecord) -> Gen:
        pairs = []
        for node in record.participants:
            if node == self.numeric_id:
                continue
            address = self.addresses.get(node)
            if address is None:
                continue
            pairs.append(
                (address, self._resolution_message(msg_type, record.gid))
            )
        replies = []
        if pairs:
            events = self.cluster_rpc.broadcast(pairs)
            # A participant that is down fails its event (fail-fast on
            # NIC detach); it resolves its own prepared half against
            # this coordinator when it recovers, so settled — not
            # all-ok — is the right barrier here.
            yield self.sim.all_settled(events)
            replies = [
                event.value for event in events
                if event.triggered and event.ok
            ]
        return replies
