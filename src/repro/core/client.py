"""Client access layer.

"Clients communicate with the system through a mutually authenticated
channel" (§IV-A) over a secondary 1 Gb/s NIC (§VIII-A).  A
:class:`ClientMachine` models one workload-generator host; its
:class:`ClientSession`\\ s speak Treaty's standard transactional API
(``BEGINTXN`` / ``TXNGET`` / ``TXNPUT`` / ``TXNCOMMIT`` /
``TXNROLLBACK``) against a chosen coordinator node.  The node-side
:class:`FrontEnd` executes each operation through the coordinator's
global transactions (or a local optimistic transaction when requested).
"""

from __future__ import annotations

import itertools
from dataclasses import replace
from typing import Any, Dict, Generator, Tuple

from ..config import ClusterConfig, EnvProfile, Runtime
from ..crypto.keys import KeyRing
from ..errors import NetworkError, TransactionAborted
from ..net.erpc import ErpcEndpoint
from ..net.message import MsgType, TxMessage
from ..net.secure_rpc import SecureRpc
from ..net.simnet import Fabric
from ..sim.core import Event, Simulator
from ..storage.format import Reader, Writer
from ..tee.runtime import NodeRuntime

__all__ = ["ClientMachine", "ClientSession", "ClientTxn", "FrontEnd"]

Gen = Generator[Event, Any, Any]

_OP_GET = 1
_OP_PUT = 2
_OP_DELETE = 3
_OP_COMMIT = 4
_OP_ROLLBACK = 5
_OP_SCAN = 6

_FLAG_OPTIMISTIC = 1


def _encode_op(kind: int, flags: int, key: bytes = b"", value: bytes = b"") -> bytes:
    return Writer().u32(kind).u32(flags).blob(key).blob(value).getvalue()


def _decode_op(body: bytes) -> Tuple[int, int, bytes, bytes]:
    reader = Reader(body)
    return reader.u32(), reader.u32(), reader.blob(), reader.blob()


class FrontEnd:
    """Node-side handler for client requests (runs inside the enclave)."""

    def __init__(self, runtime: NodeRuntime, coordinator, manager, rpc: SecureRpc):
        self.runtime = runtime
        self.coordinator = coordinator
        self.manager = manager
        #: open transactions keyed by (client numeric id, client txn seq).
        self.open_txns: Dict[Tuple[int, int], Any] = {}
        self.requests = 0
        rpc.register(MsgType.CLIENT_REQUEST, self._on_request)

    def _txn_for(self, message: TxMessage, flags: int):
        key = (message.node_id, message.txn_id)
        txn = self.open_txns.get(key)
        if txn is None:
            if flags & _FLAG_OPTIMISTIC:
                txn = self.manager.begin_optimistic()
            else:
                txn = self.coordinator.begin()
            self.open_txns[key] = txn
        return txn

    def _on_request(self, message: TxMessage, src: str) -> Gen:
        self.requests += 1
        # Waking the (idle) per-client fiber costs a SCONE scheduler
        # dispatch when the enclave is under storage-engine pressure.
        if self.runtime.profile.in_enclave and self.runtime.heavy_enclave:
            yield self.runtime.sim.timeout(
                self.runtime.costs.scone_request_dispatch
            )
        self.runtime.active_requests += 1
        try:
            result = yield from self._handle(message)
        finally:
            self.runtime.active_requests -= 1
        return result

    def _handle(self, message: TxMessage) -> Gen:
        kind, flags, key, value = _decode_op(message.body)
        session = (message.node_id, message.txn_id)
        txn = self._txn_for(message, flags)

        def reply(msg_type: int, body: bytes = b"") -> TxMessage:
            return TxMessage(
                msg_type, message.node_id, message.txn_id, message.op_id, body
            )

        try:
            if kind == _OP_GET:
                result = yield from txn.get(key)
                return reply(
                    MsgType.CLIENT_REPLY,
                    Writer().u32(1 if result is not None else 0)
                    .blob(result or b"").getvalue(),
                )
            if kind == _OP_PUT:
                yield from txn.put(key, value)
                return reply(MsgType.CLIENT_REPLY)
            if kind == _OP_DELETE:
                yield from txn.delete(key)
                return reply(MsgType.CLIENT_REPLY)
            if kind == _OP_SCAN:
                from .twopc import decode_scan_request, encode_scan_reply

                start, end, limit = decode_scan_request(value)
                rows = yield from txn.scan(start, end, limit)
                return reply(MsgType.CLIENT_REPLY, encode_scan_reply(rows))
            if kind == _OP_COMMIT:
                self.open_txns.pop(session, None)
                yield from txn.commit()
                return reply(MsgType.CLIENT_REPLY)
            if kind == _OP_ROLLBACK:
                self.open_txns.pop(session, None)
                yield from txn.rollback()
                return reply(MsgType.CLIENT_REPLY)
        except TransactionAborted as aborted:
            self.open_txns.pop(session, None)
            return reply(MsgType.FAIL, str(aborted).encode())
        return reply(MsgType.FAIL, b"unknown operation")


def client_profile(cluster_profile: EnvProfile) -> EnvProfile:
    """Clients run natively but must match the cluster's wire encryption."""
    return replace(
        cluster_profile,
        name="client(%s)" % cluster_profile.name,
        runtime=Runtime.NATIVE,
        stabilization=False,
    )


class ClientMachine:
    """One workload-generator host on the client (1 GbE) network."""

    _ids = itertools.count(1000)  # numeric ids disjoint from node ids

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        name: str,
        cluster_profile: EnvProfile,
        config: ClusterConfig,
        keyring: KeyRing,
    ):
        self.sim = sim
        self.name = name
        self.config = config
        self.runtime = NodeRuntime(sim, client_profile(cluster_profile), config)
        self.nic = fabric.attach(
            name, config.costs.client_bandwidth, config.costs.client_propagation
        )
        self.endpoint = ErpcEndpoint(self.runtime, fabric, self.nic)
        self.numeric_id = next(self._ids)
        self.rpc = SecureRpc(self.runtime, self.endpoint, keyring, self.numeric_id)
        self._session_seq = itertools.count(1)

    def session(self, coordinator_address: str) -> "ClientSession":
        """Open a session against one coordinator node."""
        return ClientSession(
            self, coordinator_address, next(ClientMachine._ids)
        )


class ClientSession:
    """One client connection: issues transactions to its coordinator."""

    def __init__(self, machine: ClientMachine, coordinator: str, client_id: int):
        self.machine = machine
        self.coordinator = coordinator
        self.client_id = client_id
        self._txn_seq = itertools.count(1)
        self.committed = 0
        self.aborted = 0

    def begin(self, optimistic: bool = False) -> "ClientTxn":
        """BEGINTXN (purely client-local until the first operation)."""
        return ClientTxn(self, next(self._txn_seq), optimistic)


class ClientTxn:
    """Client-side handle of one transaction."""

    def __init__(self, session: ClientSession, txn_seq: int, optimistic: bool):
        self.session = session
        self.txn_seq = txn_seq
        self.flags = _FLAG_OPTIMISTIC if optimistic else 0
        self._op_seq = itertools.count(1)

    def _request(self, kind: int, key: bytes = b"", value: bytes = b"") -> Gen:
        machine = self.session.machine
        message = TxMessage(
            MsgType.CLIENT_REQUEST,
            self.session.client_id,
            self.txn_seq,
            next(self._op_seq),
            _encode_op(kind, self.flags, key, value),
        )
        try:
            reply = yield from machine.rpc.call(
                self.session.coordinator, message
            )
        except NetworkError as exc:
            # The coordinator crashed mid-request (fail-fast on NIC
            # detach): surface it as an abort so closed-loop workloads
            # move on instead of hanging on a dead continuation.
            self.session.aborted += 1
            raise TransactionAborted("coordinator unreachable: %s" % exc)
        if reply.msg_type == MsgType.FAIL:
            self.session.aborted += 1
            raise TransactionAborted(reply.body.decode() or "aborted")
        return reply

    def get(self, key: bytes) -> Gen:
        reply = yield from self._request(_OP_GET, key)
        reader = Reader(reply.body)
        found = reader.u32()
        value = reader.blob()
        return value if found else None

    def put(self, key: bytes, value: bytes) -> Gen:
        yield from self._request(_OP_PUT, key, value)

    def delete(self, key: bytes) -> Gen:
        yield from self._request(_OP_DELETE, key)

    def scan(self, start: bytes, end=None, limit=None) -> Gen:
        """Range scan ``[start, end)``; returns ``[(key, value)]``."""
        from .twopc import decode_scan_reply, encode_scan_request

        reply = yield from self._request(
            _OP_SCAN, value=encode_scan_request(start, end, limit)
        )
        return decode_scan_reply(reply.body)

    def commit(self) -> Gen:
        yield from self._request(_OP_COMMIT)
        self.session.committed += 1

    def rollback(self) -> Gen:
        yield from self._request(_OP_ROLLBACK)
