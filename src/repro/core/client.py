"""Client access layer.

"Clients communicate with the system through a mutually authenticated
channel" (§IV-A) over a secondary 1 Gb/s NIC (§VIII-A).  A
:class:`ClientMachine` models one workload-generator host; its
:class:`ClientSession`\\ s speak Treaty's standard transactional API
(``BEGINTXN`` / ``TXNGET`` / ``TXNPUT`` / ``TXNCOMMIT`` /
``TXNROLLBACK``) against a chosen coordinator node.  The node-side
:class:`FrontEnd` executes each operation through the coordinator's
global transactions (or a local optimistic transaction when requested).
"""

from __future__ import annotations

import itertools
from dataclasses import replace
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from ..config import ClusterConfig, EnvProfile, Runtime
from ..crypto.keys import KeyRing
from ..errors import NetworkError, TransactionAborted, TransactionError
from ..net.erpc import ErpcEndpoint
from ..net.message import MsgType, TxMessage
from ..net.secure_rpc import SecureRpc
from ..net.simnet import Fabric
from ..sim.core import Event, Simulator
from ..storage.format import Reader, Writer
from ..tee.runtime import NodeRuntime

__all__ = ["ClientMachine", "ClientSession", "ClientTxn", "FrontEnd"]

Gen = Generator[Event, Any, Any]

_OP_GET = 1
_OP_PUT = 2
_OP_DELETE = 3
_OP_COMMIT = 4
_OP_ROLLBACK = 5
_OP_SCAN = 6
#: completer-driven redirect: "how did global transaction <key> end?"
#: Answered from the node's applied-outcome record without opening a
#: transaction; the client polls survivors when its coordinator dies
#: mid-commit.
_OP_STATUS = 7

_FLAG_OPTIMISTIC = 1
#: coordinator-free snapshot reads (``read_only_snapshot``).
_FLAG_READONLY = 2

#: outcome codes in ``_OP_STATUS`` replies.
_STATUS_UNKNOWN = 0
_STATUS_COMMITTED = 1
_STATUS_ABORTED = 2

#: how often a redirected client re-polls the survivors.
_STATUS_RETRY_INTERVAL = 0.5


def _encode_op(kind: int, flags: int, key: bytes = b"", value: bytes = b"") -> bytes:
    return Writer().u32(kind).u32(flags).blob(key).blob(value).getvalue()


def _decode_op(body: bytes) -> Tuple[int, int, bytes, bytes]:
    reader = Reader(body)
    return reader.u32(), reader.u32(), reader.blob(), reader.blob()


class FrontEnd:
    """Node-side handler for client requests (runs inside the enclave)."""

    def __init__(
        self,
        runtime: NodeRuntime,
        coordinator,
        manager,
        rpc: SecureRpc,
        participant=None,
    ):
        self.runtime = runtime
        self.coordinator = coordinator
        self.manager = manager
        #: the node's Participant role — answers ``_OP_STATUS`` probes
        #: from its applied-outcome record (completer-driven redirect).
        self.participant = participant
        #: open transactions keyed by (client numeric id, client txn seq).
        self.open_txns: Dict[Tuple[int, int], Any] = {}
        self.requests = 0
        rpc.register(MsgType.CLIENT_REQUEST, self._on_request)

    def _txn_for(self, message: TxMessage, flags: int):
        key = (message.node_id, message.txn_id)
        txn = self.open_txns.get(key)
        if txn is None:
            config = self.runtime.config
            if flags & _FLAG_READONLY and config.read_only_snapshot:
                # Coordinator-free snapshot read: this node serves (and
                # later certifies) only its own slice of the read-set.
                txn = self.manager.begin_readonly()
            elif flags & _FLAG_READONLY:
                # Knob off: read-only transactions take the normal
                # coordinator path.
                txn = self.coordinator.begin()
            elif flags & _FLAG_OPTIMISTIC:
                if config.occ_distributed:
                    txn = self.coordinator.begin(optimistic=True)
                else:
                    # Pre-extension behaviour: single-node OCC on the
                    # session's coordinator.
                    txn = self.manager.begin_optimistic()
            else:
                txn = self.coordinator.begin()
            self.open_txns[key] = txn
        return txn

    def _on_request(self, message: TxMessage, src: str) -> Gen:
        self.requests += 1
        # Waking the (idle) per-client fiber costs a SCONE scheduler
        # dispatch when the enclave is under storage-engine pressure.
        if self.runtime.profile.in_enclave and self.runtime.heavy_enclave:
            yield self.runtime.sim.timeout(
                self.runtime.costs.scone_request_dispatch
            )
        self.runtime.active_requests += 1
        try:
            result = yield from self._handle(message)
        finally:
            self.runtime.active_requests -= 1
        return result

    def _handle(self, message: TxMessage) -> Gen:
        kind, flags, key, value = _decode_op(message.body)
        session = (message.node_id, message.txn_id)

        def raw_reply(msg_type: int, body: bytes = b"") -> TxMessage:
            return TxMessage(
                msg_type, message.node_id, message.txn_id, message.op_id, body
            )

        if kind == _OP_STATUS:
            # No transaction: answer from the node's applied-outcome
            # record.  Only an *applied* outcome is reported — a lone
            # ledger slot can still be superseded by a completer race,
            # an applied one is final (appliers verify quorum first).
            yield from self.runtime.op_overhead()
            outcome = _STATUS_UNKNOWN
            if self.participant is not None:
                outcome = self.participant.applied.get(key, _STATUS_UNKNOWN)
            return raw_reply(
                MsgType.CLIENT_REPLY,
                Writer().blob(Writer().u32(outcome).getvalue())
                .blob(b"").getvalue(),
            )

        txn = self._txn_for(message, flags)
        # Success replies wrap the op body with the server-side global
        # transaction id (empty for purely local transactions): the
        # client caches it and can ask *any* surviving node how the
        # transaction ended if this coordinator dies mid-commit.
        gid_bytes = txn.gid.encode() if hasattr(txn, "gid") else b""

        def reply(body: bytes = b"") -> TxMessage:
            return raw_reply(
                MsgType.CLIENT_REPLY,
                Writer().blob(body).blob(gid_bytes).getvalue(),
            )

        try:
            if kind == _OP_GET:
                result = yield from txn.get(key)
                return reply(
                    Writer().u32(1 if result is not None else 0)
                    .blob(result or b"").getvalue(),
                )
            if kind == _OP_PUT:
                yield from txn.put(key, value)
                return reply()
            if kind == _OP_DELETE:
                yield from txn.delete(key)
                return reply()
            if kind == _OP_SCAN:
                from .twopc import decode_scan_request, encode_scan_reply

                start, end, limit = decode_scan_request(value)
                rows = yield from txn.scan(start, end, limit)
                return reply(encode_scan_reply(rows))
            if kind == _OP_COMMIT:
                self.open_txns.pop(session, None)
                yield from txn.commit()
                return reply()
            if kind == _OP_ROLLBACK:
                self.open_txns.pop(session, None)
                yield from txn.rollback()
                return reply()
        except TransactionAborted as aborted:
            self.open_txns.pop(session, None)
            return raw_reply(MsgType.FAIL, str(aborted).encode())
        return raw_reply(MsgType.FAIL, b"unknown operation")


def client_profile(cluster_profile: EnvProfile) -> EnvProfile:
    """Clients run natively but must match the cluster's wire encryption."""
    return replace(
        cluster_profile,
        name="client(%s)" % cluster_profile.name,
        runtime=Runtime.NATIVE,
        stabilization=False,
    )


class ClientMachine:
    """One workload-generator host on the client (1 GbE) network."""

    _ids = itertools.count(1000)  # numeric ids disjoint from node ids

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        name: str,
        cluster_profile: EnvProfile,
        config: ClusterConfig,
        keyring: KeyRing,
    ):
        self.sim = sim
        self.name = name
        self.config = config
        self.runtime = NodeRuntime(sim, client_profile(cluster_profile), config)
        self.nic = fabric.attach(
            name, config.costs.client_bandwidth, config.costs.client_propagation
        )
        self.endpoint = ErpcEndpoint(self.runtime, fabric, self.nic)
        self.numeric_id = next(self._ids)
        self.rpc = SecureRpc(self.runtime, self.endpoint, keyring, self.numeric_id)
        self._session_seq = itertools.count(1)

    def session(
        self,
        coordinator_address: str,
        routes: Optional[List[str]] = None,
        partitioner: Optional[Callable[[bytes], int]] = None,
        snapshot_reads: bool = False,
    ) -> "ClientSession":
        """Open a session against one coordinator node.

        ``routes`` lists every node's front address in partition order.
        With ``snapshot_reads`` on, read-only transactions route each
        operation directly to the key's owner (coordinator-free snapshot
        reads); routes are also polled for transaction outcomes when the
        coordinator dies mid-commit (completer-driven redirect).
        """
        return ClientSession(
            self,
            coordinator_address,
            next(ClientMachine._ids),
            routes=routes,
            partitioner=partitioner,
            snapshot_reads=snapshot_reads,
        )


class ClientSession:
    """One client connection: issues transactions to its coordinator."""

    def __init__(
        self,
        machine: ClientMachine,
        coordinator: str,
        client_id: int,
        routes: Optional[List[str]] = None,
        partitioner: Optional[Callable[[bytes], int]] = None,
        snapshot_reads: bool = False,
    ):
        self.machine = machine
        self.coordinator = coordinator
        self.client_id = client_id
        self.routes = routes
        self.partitioner = partitioner
        self.snapshot_reads = snapshot_reads and routes is not None
        self._txn_seq = itertools.count(1)
        self.committed = 0
        self.aborted = 0
        #: commits whose outcome was learned from a survivor after the
        #: coordinator died (completer-driven redirect).
        self.redirected = 0

    def begin(
        self, optimistic: bool = False, read_only: bool = False
    ) -> "ClientTxn":
        """BEGINTXN (purely client-local until the first operation)."""
        return ClientTxn(self, next(self._txn_seq), optimistic, read_only)

    def owner_address(self, key: bytes) -> str:
        """The front address owning ``key`` (snapshot-read routing)."""
        assert self.routes is not None and self.partitioner is not None
        return self.routes[self.partitioner(key)]


class ClientTxn:
    """Client-side handle of one transaction."""

    def __init__(
        self,
        session: ClientSession,
        txn_seq: int,
        optimistic: bool,
        read_only: bool = False,
    ):
        self.session = session
        self.txn_seq = txn_seq
        self.read_only = read_only
        self.flags = _FLAG_OPTIMISTIC if optimistic else 0
        if read_only and session.snapshot_reads and session.partitioner:
            # Only routed sessions use per-node snapshot slices: an
            # unrouted read-only transaction goes through the normal
            # coordinator path (a coordinator-local snapshot could not
            # see other shards).
            self.flags |= _FLAG_READONLY
        self._op_seq = itertools.count(1)
        #: server-side global transaction id, learned from the first
        #: coordinator reply; lets the client ask survivors how the
        #: transaction ended if the coordinator dies mid-commit.
        self.gid: bytes = b""
        #: front addresses this (read-only) transaction touched, in
        #: first-contact order — each holds one per-node snapshot slice
        #: that commit must certify.
        self._contacted: List[str] = []

    @property
    def _routed(self) -> bool:
        """Whether reads bypass the coordinator (snapshot routing)."""
        return (
            self.read_only
            and self.session.snapshot_reads
            and self.session.partitioner is not None
        )

    def _request(
        self,
        kind: int,
        key: bytes = b"",
        value: bytes = b"",
        to: Optional[str] = None,
    ) -> Gen:
        machine = self.session.machine
        address = to or self.session.coordinator
        message = TxMessage(
            MsgType.CLIENT_REQUEST,
            self.session.client_id,
            self.txn_seq,
            next(self._op_seq),
            _encode_op(kind, self.flags, key, value),
        )
        try:
            reply = yield from machine.rpc.call(address, message)
        except NetworkError as exc:
            # The node crashed mid-request (fail-fast on NIC detach):
            # surface it as an abort so closed-loop workloads move on
            # instead of hanging on a dead continuation.
            self.session.aborted += 1
            raise TransactionAborted("coordinator unreachable: %s" % exc)
        if reply.msg_type == MsgType.FAIL:
            self.session.aborted += 1
            raise TransactionAborted(reply.body.decode() or "aborted")
        reader = Reader(reply.body)
        body = reader.blob()
        gid = reader.blob()
        if gid:
            self.gid = gid
        return body

    def _read_target(self, key: bytes) -> Optional[str]:
        """Destination for a read: the owner when routing, else None."""
        if not self._routed:
            return None
        address = self.session.owner_address(key)
        if address not in self._contacted:
            self._contacted.append(address)
        return address

    def get(self, key: bytes) -> Gen:
        body = yield from self._request(
            _OP_GET, key, to=self._read_target(key)
        )
        reader = Reader(body)
        found = reader.u32()
        value = reader.blob()
        return value if found else None

    def put(self, key: bytes, value: bytes) -> Gen:
        if self.read_only:
            raise TransactionError("read-only transaction cannot write")
        yield from self._request(_OP_PUT, key, value)

    def delete(self, key: bytes) -> Gen:
        if self.read_only:
            raise TransactionError("read-only transaction cannot write")
        yield from self._request(_OP_DELETE, key)

    def scan(self, start: bytes, end=None, limit=None) -> Gen:
        """Range scan ``[start, end)``; returns ``[(key, value)]``.

        Under snapshot routing the range may span shards, so the scan
        fans out to every node and merges (scans are read-committed in
        all transaction flavours — the documented relaxation).
        """
        from .twopc import decode_scan_reply, encode_scan_request

        request = encode_scan_request(start, end, limit)
        if not self._routed:
            body = yield from self._request(_OP_SCAN, value=request)
            return decode_scan_reply(body)
        merged = []
        for address in list(self.session.routes or []):
            if address not in self._contacted:
                self._contacted.append(address)
            body = yield from self._request(_OP_SCAN, value=request, to=address)
            merged.extend(decode_scan_reply(body))
        merged.sort(key=lambda row: row[0])
        if limit is not None:
            merged = merged[:limit]
        return merged

    def commit(self) -> Gen:
        if self._routed:
            yield from self._commit_readonly()
            self.session.committed += 1
            return
        try:
            yield from self._request(_OP_COMMIT)
        except TransactionAborted as aborted:
            if (
                "coordinator unreachable" in str(aborted)
                and self.gid
                and self.session.routes
            ):
                outcome = yield from self._learn_outcome()
                if outcome == _STATUS_COMMITTED:
                    # Compensate the abort _request charged for the
                    # dead coordinator: the transaction DID commit.
                    self.session.aborted -= 1
                    self.session.committed += 1
                    self.session.redirected += 1
                    return
            raise
        self.session.committed += 1

    def _commit_readonly(self) -> Gen:
        """Certify each contacted node's snapshot slice.

        Every slice commits iff its reads are still current and covered
        by the stabilized frontier; one stale slice aborts the whole
        transaction (remaining slices are rolled back client-side).
        """
        contacted = list(self._contacted)
        for index, address in enumerate(contacted):
            try:
                yield from self._request(_OP_COMMIT, to=address)
            except TransactionAborted:
                for rest in contacted[index + 1 :]:
                    try:
                        yield from self._request(_OP_ROLLBACK, to=rest)
                    except TransactionAborted:  # pragma: no cover
                        pass
                raise

    def _learn_outcome(self) -> Gen:
        """Poll surviving nodes for the dead coordinator's decision.

        A completer replicates and applies the outcome within the
        decision timeout, so a bounded poll of the survivors' applied
        records answers "did my commit land?" without the coordinator.
        """
        machine = self.session.machine
        sim = machine.sim
        survivors = [
            address
            for address in (self.session.routes or [])
            if address != self.session.coordinator
        ]
        deadline = sim.now + machine.config.decision_timeout_s + 5.0
        while True:
            for address in survivors:
                message = TxMessage(
                    MsgType.CLIENT_REQUEST,
                    self.session.client_id,
                    self.txn_seq,
                    next(self._op_seq),
                    _encode_op(_OP_STATUS, 0, self.gid),
                )
                try:
                    reply = yield from machine.rpc.call(address, message)
                except NetworkError:
                    continue  # that node is down too; try the next
                if reply.msg_type != MsgType.CLIENT_REPLY:
                    continue
                outcome = Reader(Reader(reply.body).blob()).u32()
                if outcome != _STATUS_UNKNOWN:
                    return outcome
            if sim.now >= deadline:
                return _STATUS_UNKNOWN
            yield sim.timeout(_STATUS_RETRY_INTERVAL)

    def rollback(self) -> Gen:
        if self._routed:
            for address in list(self._contacted):
                try:
                    yield from self._request(_OP_ROLLBACK, to=address)
                except TransactionAborted:  # pragma: no cover
                    pass
            return
        yield from self._request(_OP_ROLLBACK)
