"""Treaty's secure two-phase commit protocol (§V, Figure 2).

A client-selected *coordinator* drives each distributed transaction:

1. interactive execution — ``TXNGET``/``TXNPUT`` requests are routed to
   the participant owning the key's shard (or served locally), each as a
   sealed :class:`~repro.net.message.TxMessage` carrying the unique
   ``(node, txn, op)`` triple so it can never be double-executed;
2. prepare — the coordinator logs the transaction to its Clog, then all
   participants persist prepare records and *delay their ACK until the
   prepare entry is stabilized* (rollback-protected);
3. decision — the coordinator logs the commit/abort decision to the Clog
   and stabilizes it before instructing participants;
4. commit — participants apply through group commit; nobody waits for
   the *commit* record's stabilization ("even if the system crashes,
   this Tx can be committed in the exact same order").

Transactions touching only the coordinator's shard take the single-node
fast path (§V-B) — no Clog, no 2PC rounds.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Generator, List, Optional, Set, Tuple

from ..errors import (
    NetworkError,
    TransactionAborted,
    TransactionError,
)
from ..net.message import MsgType, TxMessage
from ..net.secure_rpc import SecureRpc
from ..sim.core import Event
from ..sim.rng import SeededRng
from ..storage.format import Reader, Writer
from ..storage.log import SecureLog
from ..tee.runtime import NodeRuntime
from ..txn.manager import TransactionManager
from ..txn.pessimistic import PessimisticTxn
from ..txn.types import TxnStatus
from .ids import EPOCH_SHIFT, GlobalTxnId, TxnIdAllocator
from .rollback import DecisionLedger
from .trusted_counter import decode_counter_vector, encode_counter_vector

__all__ = [
    "ClogRecord",
    "DecisionRecord",
    "Participant",
    "Coordinator",
    "GlobalTxn",
]

Gen = Generator[Event, Any, Any]

#: a participant that has not voted within this window counts as NO.
PREPARE_VOTE_TIMEOUT = 2.0
#: decision (commit/abort) instructions are retried at this interval
#: until every participant acknowledges.
RESOLUTION_RETRY_INTERVAL = 0.5

# key -> numeric node id owning its shard
Partitioner = Callable[[bytes], int]
# (log_name, counter) -> generator that waits for stabilization
Stabilize = Callable[[str, int], Generator[Event, Any, None]]


def _encode_read(key: bytes) -> bytes:
    return Writer().blob(key).getvalue()


def _encode_write(key: bytes, value: Optional[bytes]) -> bytes:
    return (
        Writer().blob(key).u32(1 if value is None else 0).blob(value or b"").getvalue()
    )


def _decode_write(body: bytes) -> Tuple[bytes, Optional[bytes]]:
    reader = Reader(body)
    key = reader.blob()
    tombstone = reader.u32()
    value = reader.blob()
    return key, None if tombstone else value


def _encode_value_reply(found: bool, value: Optional[bytes]) -> bytes:
    return Writer().u32(1 if found else 0).blob(value or b"").getvalue()


def encode_scan_request(start: bytes, end: Optional[bytes], limit: Optional[int]) -> bytes:
    return (
        Writer()
        .blob(start)
        .u32(1 if end is not None else 0)
        .blob(end or b"")
        .u32(0xFFFFFFFF if limit is None else limit)
        .getvalue()
    )


def decode_scan_request(body: bytes):
    reader = Reader(body)
    start = reader.blob()
    has_end = reader.u32()
    end = reader.blob()
    limit = reader.u32()
    return start, (end if has_end else None), (None if limit == 0xFFFFFFFF else limit)


def encode_scan_reply(rows) -> bytes:
    writer = Writer().u32(len(rows))
    for key, value in rows:
        writer.blob(key).blob(value)
    return writer.getvalue()


def decode_scan_reply(body: bytes):
    reader = Reader(body)
    count = reader.u32()
    rows = []
    for _ in range(count):
        key = reader.blob()
        value = reader.blob()
        rows.append((key, value))
    return rows


def _decode_value_reply(body: bytes) -> Optional[bytes]:
    reader = Reader(body)
    found = reader.u32()
    value = reader.blob()
    return value if found else None


# -- distributed OCC codecs (occ_distributed) --------------------------------

def _encode_versioned_reply(
    found: bool, value: Optional[bytes], seq: int
) -> bytes:
    return (
        Writer().u32(1 if found else 0).blob(value or b"").u64(seq).getvalue()
    )


def _decode_versioned_reply(body: bytes) -> Tuple[Optional[bytes], int]:
    reader = Reader(body)
    found = reader.u32()
    value = reader.blob()
    seq = reader.u64()
    return (value if found else None), seq


def encode_occ_prepare(
    reads: List[Tuple[bytes, int]],
    writes: List[Tuple[bytes, Optional[bytes]]],
) -> bytes:
    """PREPARE body: the participant's read-set versions + write-set."""
    writer = Writer().u32(len(reads))
    for key, seq in reads:
        writer.blob(key).u64(seq)
    writer.u32(len(writes))
    for key, value in writes:
        writer.blob(key).u32(1 if value is None else 0).blob(value or b"")
    return writer.getvalue()


def decode_occ_prepare(body: bytes):
    reader = Reader(body)
    reads = [(reader.blob(), reader.u64()) for _ in range(reader.u32())]
    writes = []
    for _ in range(reader.u32()):
        key = reader.blob()
        tombstone = reader.u32()
        value = reader.blob()
        writes.append((key, None if tombstone else value))
    return reads, writes


class ClogRecord:
    """One coordinator-log entry: the 2PC protocol state (§V-A)."""

    PREPARE = 1
    COMMIT = 2
    ABORT = 3
    #: all participants acknowledged the commit: recovery need not
    #: re-drive this transaction.
    COMPLETE = 4

    def __init__(
        self,
        kind: int,
        gid: GlobalTxnId,
        participants: List[int],
        targets: Optional[List[Tuple[str, int]]] = None,
    ):
        self.kind = kind
        self.gid = gid
        self.participants = participants
        #: piggybacked stabilization targets: for COMMIT records, the
        #: participants' prepare-record (log, counter) pairs folded into
        #: the coordinator's group-wide round.  Persisted so recovery
        #: can re-stabilize targets the crashed coordinator collected
        #: but never saw acknowledged.
        self.targets: List[Tuple[str, int]] = list(targets or [])

    def encode(self) -> bytes:
        writer = Writer().u32(self.kind).blob(self.gid.encode())
        writer.u32(len(self.participants))
        for node in self.participants:
            writer.u64(node)
        writer.u32(len(self.targets))
        for log_name, counter in self.targets:
            writer.blob(log_name.encode()).u64(counter)
        return writer.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "ClogRecord":
        reader = Reader(data)
        kind = reader.u32()
        gid = GlobalTxnId.decode(reader.blob())
        count = reader.u32()
        participants = [reader.u64() for _ in range(count)]
        target_count = reader.u32()
        targets = [
            (reader.blob().decode(), reader.u64())
            for _ in range(target_count)
        ]
        return cls(kind, gid, participants, targets)


class DecisionRecord:
    """The replicated commit/abort decision (non-blocking commit).

    Body of ``DECISION_RECORD`` broadcasts and ``DECISION_QUERY``
    replies.  Unlike a :class:`ClogRecord` it also names the
    coordinator and the decision entry's own ``(log, counter)`` target,
    so any completer can rollback-protect the whole group — every
    prepare record plus the decision entry — before acting on it, even
    with the coordinator dead.
    """

    def __init__(
        self,
        kind: int,
        gid: GlobalTxnId,
        participants: List[int],
        targets: Optional[List[Tuple[str, int]]],
        log_name: str,
        counter: int,
        coordinator: int,
    ):
        self.kind = kind
        self.gid = gid
        self.participants = list(participants)
        #: the group's prepare-record (log, counter) pairs, copied from
        #: the Clog decision entry.
        self.targets: List[Tuple[str, int]] = list(targets or [])
        #: the coordinator Clog holding the decision entry, plus the
        #: entry's counter (0 for synthetic slots written on a plain
        #: COMMIT/ABORT instruction, whose stability the instruction's
        #: sender already guaranteed).
        self.log_name = log_name
        self.counter = counter
        self.coordinator = coordinator

    def encode(self) -> bytes:
        writer = (
            Writer()
            .u32(self.kind)
            .blob(self.gid.encode())
            .u64(self.coordinator)
            .blob(self.log_name.encode())
            .u64(self.counter)
        )
        writer.u32(len(self.participants))
        for node in self.participants:
            writer.u64(node)
        writer.u32(len(self.targets))
        for log_name, counter in self.targets:
            writer.blob(log_name.encode()).u64(counter)
        return writer.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "DecisionRecord":
        reader = Reader(data)
        kind = reader.u32()
        gid = GlobalTxnId.decode(reader.blob())
        coordinator = reader.u64()
        log_name = reader.blob().decode()
        counter = reader.u64()
        participants = [reader.u64() for _ in range(reader.u32())]
        targets = [
            (reader.blob().decode(), reader.u64())
            for _ in range(reader.u32())
        ]
        return cls(
            kind, gid, participants, targets, log_name, counter, coordinator
        )


class Participant:
    """The participant role: executes remote operations for coordinators."""

    def __init__(
        self,
        runtime: NodeRuntime,
        manager: TransactionManager,
        rpc: SecureRpc,
        stabilize: Stabilize,
        numeric_id: int = 0,
        addresses: Optional[Dict[int, str]] = None,
        pipeline=None,
        ledger: Optional[DecisionLedger] = None,
        op_ids: Optional[Callable[[], int]] = None,
    ):
        self.runtime = runtime
        self.manager = manager
        self.rpc = rpc
        self.stabilize = stabilize
        self.tracer = runtime.tracer
        self.node = runtime.name or None
        self.numeric_id = numeric_id
        self.addresses = addresses
        #: the node's DurabilityPipeline; completers use it to
        #: rollback-protect a replicated decision's targets pre-apply.
        self.pipeline = pipeline
        #: write-once decision slots (non-blocking commit).
        self.ledger = ledger or DecisionLedger(runtime.config.num_nodes)
        #: mint cluster-unique operation ids for completer-driven
        #: instructions — the same asker-folded scheme the recovery
        #: resolution path uses, so two racing completers never collide
        #: in a peer's replay guard.
        if op_ids is None:
            fallback = itertools.count(1)
            op_ids = lambda: (1 << 58) | (numeric_id << 50) | next(fallback)  # noqa: E731
        self.op_ids = op_ids
        #: deterministic jitter de-synchronizing simultaneous watchdogs.
        self._rng = SeededRng(
            runtime.config.seed, runtime.name or "participant",
            "completer-watchdog",
        )
        #: participant-local halves of distributed transactions.
        self.active: Dict[bytes, PessimisticTxn] = {}
        #: final outcomes this node applied (or was instructed to
        #: apply), keyed by encoded gid.  Answers client ``_OP_STATUS``
        #: probes after a coordinator death: an *applied* outcome is
        #: final (appliers verify quorum/decision evidence first), so
        #: reporting it to a redirected client is safe.  Bounded FIFO.
        self.applied: Dict[bytes, int] = {}
        self.prepares_served = 0
        self.commits_served = 0
        #: completer takeovers this incarnation performed.
        self.takeovers = 0
        rpc.register(MsgType.TXN_READ, self._on_read)
        rpc.register(MsgType.TXN_WRITE, self._on_write)
        rpc.register(MsgType.TXN_SCAN, self._on_scan)
        rpc.register(MsgType.TXN_READ_OCC, self._on_read_occ)
        rpc.register(MsgType.TXN_SCAN_OCC, self._on_scan_occ)
        rpc.register(MsgType.TXN_PREPARE, self._on_prepare)
        rpc.register(MsgType.TXN_COMMIT, self._on_commit)
        rpc.register(MsgType.TXN_ABORT, self._on_abort)
        rpc.register(MsgType.TXN_FENCE, self._on_fence)
        rpc.register(MsgType.DECISION_RECORD, self._on_decision_record)
        rpc.register(MsgType.DECISION_QUERY, self._on_decision_query)

    @property
    def replication(self) -> bool:
        """Whether the non-blocking completion protocol is active."""
        return (
            self.runtime.config.commit_replication
            and self.addresses is not None
        )

    # -- helpers ------------------------------------------------------------
    def _txn_for(self, message: TxMessage) -> PessimisticTxn:
        gid = GlobalTxnId(message.node_id, message.txn_id)
        key = gid.encode()
        txn = self.active.get(key)
        if txn is None:
            txn = self.manager.begin_pessimistic(txn_id=key)
            self.active[key] = txn
            if self.replication:
                self.runtime.sim.process(
                    self._orphan_fuse(key),
                    name="orphan-fuse@%s" % (self.node or "?"),
                )
        return txn

    @staticmethod
    def _ack(message: TxMessage, body: bytes = b"") -> TxMessage:
        return TxMessage(
            MsgType.ACK, message.node_id, message.txn_id, message.op_id, body
        )

    @staticmethod
    def _fail(message: TxMessage, reason: bytes = b"") -> TxMessage:
        return TxMessage(
            MsgType.FAIL, message.node_id, message.txn_id, message.op_id, reason
        )

    def _drop(self, message: TxMessage) -> None:
        self.active.pop(GlobalTxnId(message.node_id, message.txn_id).encode(), None)

    #: cap on remembered final outcomes (old entries evicted FIFO).
    APPLIED_CAP = 4096

    def _record_outcome(self, gid_bytes: bytes, kind: int) -> None:
        """Remember a final outcome for client ``_OP_STATUS`` probes."""
        # 1 = committed, 2 = aborted (the client status codes).
        self.applied[gid_bytes] = 1 if kind == ClogRecord.COMMIT else 2
        while len(self.applied) > self.APPLIED_CAP:
            self.applied.pop(next(iter(self.applied)))

    # -- handlers (ExecuteTxnReqHandler in Figure 2) -----------------------------
    def _on_read(self, message: TxMessage, src: str) -> Gen:
        txn = self._txn_for(message)
        reader = Reader(message.body)
        key = reader.blob()
        try:
            value = yield from txn.get(key)
        except TransactionAborted as aborted:
            self._drop(message)
            return self._fail(message, str(aborted).encode())
        return self._ack(message, _encode_value_reply(value is not None, value))

    def _on_scan(self, message: TxMessage, src: str) -> Gen:
        txn = self._txn_for(message)
        start, end, limit = decode_scan_request(message.body)
        try:
            rows = yield from txn.scan(start, end, limit)
        except TransactionAborted as aborted:
            self._drop(message)
            return self._fail(message, str(aborted).encode())
        return self._ack(message, encode_scan_reply(rows))

    def _on_read_occ(self, message: TxMessage, src: str) -> Gen:
        """Stateless versioned read (occ_distributed execution phase).

        No participant-local transaction, no lock, no ``active`` entry:
        the reply carries the key's current sequence number and the
        coordinator validates it later inside PREPARE.
        """
        reader = Reader(message.body)
        key = reader.blob()
        value, seq = yield from self.manager.engine.get_with_seq(key)
        return self._ack(
            message, _encode_versioned_reply(value is not None, value, seq)
        )

    def _on_scan_occ(self, message: TxMessage, src: str) -> Gen:
        """Stateless read-committed range scan (occ_distributed)."""
        start, end, limit = decode_scan_request(message.body)
        yield from self.runtime.op_overhead()
        rows = yield from self.manager.engine.scan(start, end, limit=limit)
        return self._ack(message, encode_scan_reply(rows))

    def _on_write(self, message: TxMessage, src: str) -> Gen:
        txn = self._txn_for(message)
        key, value = _decode_write(message.body)
        try:
            if value is None:
                yield from txn.delete(key)
            else:
                yield from txn.put(key, value)
        except TransactionAborted as aborted:
            self._drop(message)
            return self._fail(message, str(aborted).encode())
        return self._ack(message)

    @property
    def _piggyback(self) -> bool:
        """Whether counter targets ride the 2PC ACKs instead of being
        stabilized locally (only meaningful under stabilization)."""
        return (
            self.runtime.profile.stabilization
            and self.runtime.config.twopc_piggyback
        )

    def _on_prepare(self, message: TxMessage, src: str) -> Gen:
        """Prepare the local transaction; ACK only once stabilized (§V-A).

        With piggybacking the stabilization duty moves to the
        coordinator: the ACK carries the prepare record's (log, counter)
        target, and the coordinator folds it into one group-wide round
        before any COMMIT instruction — the prepare is still stable
        before anyone acts on the decision, just via a shared round.
        """
        gid = GlobalTxnId(message.node_id, message.txn_id)
        if message.body:
            # occ_distributed: the PREPARE carries this participant's
            # read-set versions and write-set.  The local half is
            # created here — execution was lock-free at the coordinator
            # — and validation runs inside this prepare critical
            # section, riding the piggybacked round below.
            txn = yield from self._validate_occ(gid, message)
            if txn is None:
                return self._fail(message, b"validation conflict")
        else:
            txn = self.active.get(gid.encode())
            if txn is None or txn.status != TxnStatus.ACTIVE:
                return self._fail(message, b"no active local txn")
        try:
            counter, log_name = yield from txn.prepare()
        except TransactionAborted as aborted:
            self._drop(message)
            return self._fail(message, str(aborted).encode())
        self.prepares_served += 1
        if self.replication:
            # A prepared half is now in doubt: if the decision never
            # arrives (dead coordinator), this node assumes the
            # completer role after the decision timeout.
            self.runtime.sim.process(
                self._decision_watchdog(gid.encode()),
                name="decision-watch@%s" % (self.node or "?"),
            )
        if self._piggyback:
            self.tracer.event(
                "twopc", "prepare_target", node=self.node,
                txn=gid.encode().hex(), log=log_name, counter=counter,
                coord=message.node_id,
            )
            return self._ack(
                message, encode_counter_vector([(log_name, counter)])
            )
        if self.runtime.profile.stabilization:
            # "Participants delay replying back to the coordinator until
            # the prepare entry in the log is stabilized."
            yield from self.stabilize(log_name, counter)
        self.tracer.event(
            "twopc", "prepare_ack", node=self.node,
            txn=gid.encode().hex(), log=log_name, counter=counter,
            coord=message.node_id,
        )
        return self._ack(message)

    def _validate_occ(self, gid: GlobalTxnId, message: TxMessage) -> Gen:
        """Create + validate the OCC local half inside PREPARE.

        Returns the pinned-and-validated transaction, or ``None`` when
        validation conflicts (the caller NACKs; presumed abort cleans
        up — the conflicting half has already rolled itself back).
        """
        key = gid.encode()
        if key in self.active:
            # Duplicate PREPARE (retry after a partial round): the half
            # already exists, pins and all; just hand it back.
            txn = self.active[key]
            return txn if txn.status == TxnStatus.ACTIVE else None
        reads, writes = decode_occ_prepare(message.body)
        txn = self.manager.begin_occ_distributed(txn_id=key)
        txn.load(reads, writes)
        self.active[key] = txn
        if self.replication:
            self.runtime.sim.process(
                self._orphan_fuse(key),
                name="orphan-fuse@%s" % (self.node or "?"),
            )
        metrics = self.runtime.metrics
        span = self.tracer.span(
            "twopc", "validate", node=self.node, txn=key.hex(),
            reads=len(reads), writes=len(writes),
        )
        try:
            yield from txn.validate_and_pin()
        except TransactionAborted:
            span.close(outcome="conflict")
            metrics.counter("occ.conflicts").inc()
            self.active.pop(key, None)
            return None
        span.close(outcome="ok")
        metrics.counter("occ.validated").inc()
        return txn

    def _on_commit(self, message: TxMessage, src: str) -> Gen:
        gid = GlobalTxnId(message.node_id, message.txn_id)
        if self.replication:
            # A direct instruction is decision evidence too: the sender
            # (coordinator, its recovery, or a completer) already made
            # the decision durable before driving it.  The slot makes
            # this node's answer to later DECISION_QUERYs authoritative.
            self.ledger.record(
                gid.encode(),
                DecisionRecord(
                    ClogRecord.COMMIT, gid, [], [], "", 0, message.node_id
                ),
            )
        self._record_outcome(gid.encode(), ClogRecord.COMMIT)
        txn = self.active.pop(gid.encode(), None)
        if txn is None:
            # Already committed (e.g. duplicate instruction after the
            # coordinator recovered): "this message is ignored" (§VI).
            return self._ack(message)
        body = b""
        if self._piggyback:
            # Symmetric apply-side piggyback: the commit record's target
            # rides the ACK and joins the coordinator's background
            # COMPLETE round instead of a local background fiber.
            counter, log_name = yield from txn.commit_prepared_async(
                defer_stabilization=True
            )
            body = encode_counter_vector([(log_name, counter)])
        else:
            yield from txn.commit_prepared_async()
        self.commits_served += 1
        self.tracer.event(
            "twopc", "commit_apply", node=self.node, txn=gid.encode().hex()
        )
        return self._ack(message, body)

    def _on_abort(self, message: TxMessage, src: str) -> Gen:
        gid = GlobalTxnId(message.node_id, message.txn_id)
        if self.replication:
            self.ledger.record(
                gid.encode(),
                DecisionRecord(
                    ClogRecord.ABORT, gid, [], [], "", 0, message.node_id
                ),
            )
        self._record_outcome(gid.encode(), ClogRecord.ABORT)
        txn = self.active.pop(gid.encode(), None)
        if txn is not None:
            if txn.status == TxnStatus.PREPARED:
                yield from txn.abort_prepared()
            else:
                yield from txn.rollback()
            self.tracer.event(
                "twopc", "abort_apply", node=self.node,
                txn=gid.encode().hex(),
            )
        return self._ack(message)

    def _on_fence(self, message: TxMessage, src: str) -> Gen:
        """A recovered coordinator fences its pre-crash boot epoch.

        Local halves of that coordinator's transactions that never
        reached PREPARE died with its volatile state: no log anywhere
        records them, so nobody will ever resolve them and their locks
        would be held forever.  The fence (``txn_id`` carries the new
        boot epoch, which also occupies the high bits of every txn id)
        aborts exactly those orphans.  PREPARED halves survive — they
        are resolved through the coordinator's Clog replay.
        """
        yield from self.runtime.op_overhead()
        epoch = message.txn_id
        orphans = [
            key for key, txn in self.active.items()
            if txn.status == TxnStatus.ACTIVE
            and GlobalTxnId.decode(key).node_id == message.node_id
            and GlobalTxnId.decode(key).local_seq >> EPOCH_SHIFT < epoch
        ]
        for key in orphans:
            txn = self.active.pop(key)
            yield from txn.rollback()
            self.tracer.event(
                "twopc", "fence_abort", node=self.node, txn=key.hex(),
                coord=message.node_id, epoch=epoch,
            )
        return self._ack(message)

    # -- non-blocking completion (decision replication) ----------------------
    def _on_decision_record(self, message: TxMessage, src: str) -> Gen:
        """Store a replicated decision into this node's write-once slot.

        ACK means "my slot now holds (or already held) a decision of
        this kind"; a FAIL reply carries the conflicting record the slot
        holds instead, so the sender learns why its write was rejected.
        """
        yield from self.runtime.op_overhead()
        record = DecisionRecord.decode(message.body)
        gid_bytes = record.gid.encode()
        stored = self.ledger.record(gid_bytes, record)
        if stored is record:
            self.ledger.replicated += 1
            self.runtime.metrics.counter("decision.replicated").inc()
            self.tracer.event(
                "twopc", "decision_replicated", node=self.node,
                txn=gid_bytes.hex(),
                kind="commit" if record.kind == ClogRecord.COMMIT
                else "abort",
                coord=record.coordinator,
            )
        if stored.kind != record.kind:
            return self._fail(message, stored.encode())
        return self._ack(message)

    def _on_decision_query(self, message: TxMessage, src: str) -> Gen:
        """Answer a timed-out peer: the decision slot we hold, if any."""
        yield from self.runtime.op_overhead()
        gid_bytes = GlobalTxnId(message.node_id, message.txn_id).encode()
        record = self.ledger.get(gid_bytes)
        return self._ack(
            message, record.encode() if record is not None else b""
        )

    # -- completer watchdogs -------------------------------------------------
    def _decision_watchdog(self, gid_bytes: bytes) -> Gen:
        """Armed per prepared half: take over if no decision arrives."""
        config = self.runtime.config
        yield self.runtime.sim.timeout(
            config.decision_timeout_s
            + self._rng.uniform(0.0, RESOLUTION_RETRY_INTERVAL)
        )
        txn = self.active.get(gid_bytes)
        if txn is None or txn.status != TxnStatus.PREPARED:
            return  # decided (or aborted locally) in time
        yield from self.complete(gid_bytes)

    def _orphan_fuse(self, gid_bytes: bytes) -> Gen:
        """Release ACTIVE halves of a coordinator that died mid-execution
        and is never restarted (so its recovery epoch fence never comes).

        Presumed abort makes this safe: an ACTIVE half never voted YES,
        so the group's decision — if one exists at all — can only be
        abort.  A *reachable* coordinator re-arms the fuse instead: the
        transaction may simply be slow, and aborting its half here would
        let a later operation silently recreate a partial one.
        """
        gid = GlobalTxnId.decode(gid_bytes)
        sim = self.runtime.sim
        fuse = PREPARE_VOTE_TIMEOUT + self.runtime.config.decision_timeout_s
        while True:
            yield sim.timeout(
                fuse + self._rng.uniform(0.0, RESOLUTION_RETRY_INTERVAL)
            )
            txn = self.active.get(gid_bytes)
            if txn is None or txn.status != TxnStatus.ACTIVE:
                return
            try:
                yield from self.rpc.call(
                    self.addresses[gid.node_id],
                    TxMessage(
                        MsgType.TXN_RESOLVE, gid.node_id, gid.local_seq,
                        self.op_ids(),
                    ),
                )
            except NetworkError:
                break  # coordinator unreachable: fence the orphan
        txn = self.active.get(gid_bytes)
        if txn is None or txn.status != TxnStatus.ACTIVE:
            return
        self.active.pop(gid_bytes, None)
        yield from txn.rollback()
        self.tracer.event(
            "twopc", "fence_abort", node=self.node, txn=gid_bytes.hex(),
            coord=gid.node_id, epoch=0,
        )

    # -- the completer state machine -----------------------------------------
    def complete(self, gid_bytes: bytes) -> Gen:
        """Assume the completer role for an in-doubt prepared half.

        Tally the cluster's decision slots each round: once COMMIT holds
        a majority of slots the decision is final and this node applies
        it (rollback-protecting the whole group first) and drives the
        rest of the group; once enough conflicting slots make commit
        unreachable, abort is final (presumed abort: a commit that never
        reached its quorum was never acknowledged to any client).  With
        neither final, spread the best record we saw — or propose abort —
        into every reachable empty slot and retally after a jittered
        backoff.  Races between completers (and a recovering
        coordinator's redrive) resolve idempotently: slots are
        write-once, instructions carry asker-folded operation ids, and
        the ``active``-entry pop applies each outcome exactly once.
        """
        if gid_bytes not in self.active:
            return
        sim = self.runtime.sim
        ledger = self.ledger
        gid = GlobalTxnId.decode(gid_bytes)
        self.takeovers += 1
        self.runtime.metrics.counter("completer.takeover").inc()
        self.tracer.event(
            "twopc", "completer_takeover", node=self.node,
            txn=gid_bytes.hex(), coord=gid.node_id,
        )
        span = self.tracer.span(
            "twopc", "complete", node=self.node, txn=gid_bytes.hex(),
        )
        outcome = "pending"
        try:
            while gid_bytes in self.active:
                kinds, commit_record = yield from self._decision_round(
                    gid_bytes, gid
                )
                commits = sum(
                    1 for kind in kinds.values()
                    if kind == ClogRecord.COMMIT
                )
                aborts = sum(
                    1 for kind in kinds.values() if kind == ClogRecord.ABORT
                )
                if (
                    commits < ledger.commit_quorum
                    and aborts < ledger.abort_quorum
                ):
                    proposal = commit_record
                    if proposal is None:
                        proposal = DecisionRecord(
                            ClogRecord.ABORT, gid, [], [], "", 0,
                            self.numeric_id,
                        )
                    stored = ledger.record(gid_bytes, proposal)
                    kinds[self.numeric_id] = stored.kind
                    empty = [
                        node for node, kind in kinds.items()
                        if kind is None and node != self.numeric_id
                    ]
                    accepted = yield from self._spread(gid, stored, empty)
                    for node in accepted:
                        kinds[node] = stored.kind
                    commits = sum(
                        1 for kind in kinds.values()
                        if kind == ClogRecord.COMMIT
                    )
                    aborts = sum(
                        1 for kind in kinds.values()
                        if kind == ClogRecord.ABORT
                    )
                if commits >= ledger.commit_quorum:
                    outcome = "commit"
                    yield from self._complete_commit(gid_bytes, commit_record)
                    return
                if aborts >= ledger.abort_quorum:
                    outcome = "abort"
                    yield from self._complete_abort(
                        gid_bytes, ledger.get(gid_bytes)
                    )
                    return
                yield sim.timeout(
                    RESOLUTION_RETRY_INTERVAL
                    + self._rng.uniform(0.0, RESOLUTION_RETRY_INTERVAL)
                )
        finally:
            span.close(outcome=outcome)

    def _decision_round(self, gid_bytes: bytes, gid: GlobalTxnId) -> Gen:
        """One tally round: read every reachable peer's decision slot.

        Returns ``(kinds, commit_record)`` where ``kinds`` maps node id
        -> slot kind (``None`` = reachable but empty; unreachable peers
        are absent) and ``commit_record`` is a full COMMIT record if any
        slot supplied one.
        """
        sim = self.runtime.sim
        peers = sorted(
            node for node in self.addresses if node != self.numeric_id
        )
        events = dict(zip(peers, self.rpc.broadcast([
            (
                self.addresses[node],
                TxMessage(
                    MsgType.DECISION_QUERY, gid.node_id, gid.local_seq,
                    self.op_ids(),
                ),
            )
            for node in peers
        ])))
        yield sim.any_of([
            sim.all_settled(list(events.values())),
            sim.timeout(RESOLUTION_RETRY_INTERVAL),
        ])
        kinds: Dict[int, Optional[int]] = {}
        commit_record: Optional[DecisionRecord] = None
        own = self.ledger.get(gid_bytes)
        if own is not None:
            kinds[self.numeric_id] = own.kind
            if own.kind == ClogRecord.COMMIT:
                commit_record = own
        for node, event in events.items():
            reply = event.value if (event.triggered and event.ok) else None
            if reply is None or reply.msg_type != MsgType.ACK:
                continue
            if not reply.body:
                kinds[node] = None
                continue
            record = DecisionRecord.decode(reply.body)
            kinds[node] = record.kind
            if record.kind == ClogRecord.COMMIT and (
                commit_record is None or not commit_record.targets
            ):
                commit_record = record
        return kinds, commit_record

    def _spread(
        self, gid: GlobalTxnId, record: "DecisionRecord", nodes: List[int]
    ) -> Gen:
        """Write ``record`` into peers' empty slots; returns acceptors."""
        if not nodes:
            return []
        sim = self.runtime.sim
        body = record.encode()
        events = dict(zip(nodes, self.rpc.broadcast([
            (
                self.addresses[node],
                TxMessage(
                    MsgType.DECISION_RECORD, gid.node_id, gid.local_seq,
                    self.op_ids(), body,
                ),
            )
            for node in nodes
        ])))
        yield sim.any_of([
            sim.all_settled(list(events.values())),
            sim.timeout(RESOLUTION_RETRY_INTERVAL),
        ])
        accepted = []
        for node, event in events.items():
            reply = event.value if (event.triggered and event.ok) else None
            if reply is not None and reply.msg_type == MsgType.ACK:
                accepted.append(node)
        return accepted

    def _complete_commit(
        self, gid_bytes: bytes, record: Optional["DecisionRecord"]
    ) -> Gen:
        """Apply a quorum-final COMMIT and drive the rest of the group."""
        if (
            record is not None
            and self.pipeline is not None
            and self.runtime.profile.stabilization
        ):
            # I1: the group's prepare records and the decision entry must
            # be rollback-protected before anyone applies the commit —
            # the same group round the coordinator would have run.
            targets = list(record.targets)
            if record.counter:
                targets.append((record.log_name, record.counter))
            if targets:
                yield from self.pipeline.stabilize_group(
                    targets, txn=gid_bytes.hex(), phase="complete",
                )
        self._record_outcome(gid_bytes, ClogRecord.COMMIT)
        txn = self.active.pop(gid_bytes, None)
        apply_targets: List[Tuple[str, int]] = []
        if txn is not None:
            if self._piggyback:
                counter, log_name = yield from txn.commit_prepared_async(
                    defer_stabilization=True
                )
                apply_targets.append((log_name, counter))
            else:
                yield from txn.commit_prepared_async()
            self.commits_served += 1
            self.tracer.event(
                "twopc", "commit_apply", node=self.node,
                txn=gid_bytes.hex(),
            )
        if record is not None and record.participants:
            collected = yield from self._drive_group(
                MsgType.TXN_COMMIT, gid_bytes, record
            )
            apply_targets.extend(collected)
        if (
            apply_targets
            and self.pipeline is not None
            and self.runtime.profile.stabilization
        ):
            yield from self.pipeline.stabilize_group(
                apply_targets, txn=gid_bytes.hex(), phase="complete",
            )

    def _complete_abort(
        self, gid_bytes: bytes, record: Optional["DecisionRecord"]
    ) -> Gen:
        """Apply a final abort; drive peers we know about (best effort —
        every prepared peer runs its own watchdog anyway)."""
        self._record_outcome(gid_bytes, ClogRecord.ABORT)
        txn = self.active.pop(gid_bytes, None)
        if txn is not None:
            if txn.status == TxnStatus.PREPARED:
                yield from txn.abort_prepared()
            else:
                yield from txn.rollback()
            self.tracer.event(
                "twopc", "abort_apply", node=self.node,
                txn=gid_bytes.hex(),
            )
        if record is not None and record.participants:
            yield from self._drive_group(
                MsgType.TXN_ABORT, gid_bytes, record
            )

    def _drive_group(
        self, msg_type: int, gid_bytes: bytes, record: "DecisionRecord"
    ) -> Gen:
        """Instruct the group once; returns piggybacked apply targets.

        One round only: unreachable peers complete via their own
        watchdogs (or the coordinator's recovery), and duplicate
        instructions are absorbed by the receivers' exactly-once pop.
        """
        gid = GlobalTxnId.decode(gid_bytes)
        pairs = [
            (
                self.addresses[node],
                TxMessage(
                    msg_type, gid.node_id, gid.local_seq, self.op_ids()
                ),
            )
            for node in record.participants
            if node != self.numeric_id and node in self.addresses
        ]
        if not pairs:
            return []
        events = self.rpc.broadcast(pairs)
        yield self.runtime.sim.all_settled(events)
        targets: List[Tuple[str, int]] = []
        for event in events:
            reply = event.value if (event.triggered and event.ok) else None
            if (
                reply is not None
                and reply.msg_type == MsgType.ACK
                and reply.body
            ):
                targets.extend(decode_counter_vector(reply.body))
        return targets


class Coordinator:
    """The coordinator role: drives global transactions over secure 2PC."""

    def __init__(
        self,
        runtime: NodeRuntime,
        manager: TransactionManager,
        rpc: SecureRpc,
        clog: SecureLog,
        node_numeric_id: int,
        addresses: Dict[int, str],
        partitioner: Partitioner,
        stabilize: Stabilize,
        epoch: int = 0,
        pipeline=None,
        ledger: Optional[DecisionLedger] = None,
    ):
        self.runtime = runtime
        self.manager = manager
        self.rpc = rpc
        self.clog = clog
        self.node_numeric_id = node_numeric_id
        self.addresses = addresses  # numeric node id -> cluster address
        self.partitioner = partitioner
        self.stabilize = stabilize
        #: the node's DurabilityPipeline (group-wide stabilization rounds).
        self.pipeline = pipeline
        #: this node's write-once decision slots (shared with its
        #: Participant role under ``commit_replication``).
        self.ledger = ledger
        self.epoch = epoch
        #: per-incarnation decision-replication operation ids: distinct
        #: base from transaction ops and resolution ops, epoch-stamped so
        #: a recovered coordinator's re-replication never collides with
        #: its pre-crash broadcasts in a peer's replay guard.
        self._decision_ops = itertools.count(1)
        self.tracer = runtime.tracer
        self.node = runtime.name or None
        self.allocator = TxnIdAllocator(node_numeric_id, epoch)
        #: decisions recorded in the Clog:
        #: gid -> (kind, clog counter, piggybacked targets).
        self.decisions: Dict[bytes, Tuple[int, int, Tuple[Tuple[str, int], ...]]] = {}
        self.distributed_commits = 0
        self.local_commits = 0
        self.aborts = 0
        rpc.register(MsgType.TXN_RESOLVE, self._on_resolve)

    def begin(self, optimistic: bool = False) -> "GlobalTxn":
        """BEGINTXN: create a global transaction handle.

        ``optimistic`` selects distributed OCC (``occ_distributed``):
        lock-free execution with validation inside each participant's
        PREPARE critical section.
        """
        return GlobalTxn(self, self.allocator.next(), optimistic=optimistic)

    # -- Clog ---------------------------------------------------------------------
    @property
    def piggyback(self) -> bool:
        """Group-wide stabilization rounds via 2PC-message piggybacking."""
        return (
            self.runtime.profile.stabilization
            and self.runtime.config.twopc_piggyback
            and self.pipeline is not None
        )

    @property
    def replication(self) -> bool:
        """Whether decisions are replicated before the client reply."""
        return (
            self.runtime.config.commit_replication
            and self.ledger is not None
        )

    def _decision_op_id(self) -> int:
        return (
            (1 << 59)
            | (self.epoch << 40)
            | next(self._decision_ops)
        )

    def _replicate_decision(
        self, record: "DecisionRecord", txn_hex: str, phase: str = "decision"
    ) -> Gen:
        """Make the decision durable on a quorum before the client reply.

        The DECISION_RECORD broadcast is enqueued in the same instant
        the group stabilization round's first frames go out, so the
        transport's doorbell window seals both into one frame per peer —
        the decision rides the piggybacked round instead of costing its
        own.  The quorum-acknowledgement wait then overlaps the counter
        round.  The coordinator's own slot counts as one ack (it is
        backed by the durable Clog entry).

        Returns True once the decision is final.  For a COMMIT record,
        False means conflicting completer slots made the commit quorum
        unreachable — the caller must supersede with an abort, which is
        safe because a commit that cannot reach quorum was never (and
        will never be) acknowledged to the client.
        """
        sim = self.runtime.sim
        ledger = self.ledger
        gid_bytes = record.gid.encode()
        stored = ledger.record(gid_bytes, record)
        if record.kind == ClogRecord.COMMIT and stored.kind != record.kind:
            # A completer abort proposal already occupies this node's
            # own slot (a peer's watchdog fired while we were still
            # deciding, or a local completer raced this redrive).  The
            # quorum arithmetic below counts our own slot as one commit
            # ack, which would be a lie here — and the abort side may
            # already be one slot from finality.  Give up immediately:
            # the client was never acknowledged, so the superseding
            # abort the caller logs is safe.
            return False
        body = record.encode()
        peers = sorted(
            node for node in self.addresses
            if node != self.node_numeric_id
        )

        def send(nodes):
            sends = self.rpc.broadcast([
                (
                    self.addresses[node],
                    TxMessage(
                        MsgType.DECISION_RECORD, record.gid.node_id,
                        record.gid.local_seq, self._decision_op_id(), body,
                    ),
                )
                for node in nodes
            ])
            for event in sends:
                # A send to a down peer fails fast — possibly before the
                # quorum loop attaches its first settle barrier (the
                # stabilization round runs in between under piggyback).
                # Defuse so the uncovered failure never surfaces at the
                # simulator; the loop reads event.ok itself.
                event.defuse()
            return dict(zip(nodes, sends))

        if self.piggyback:
            events = yield from self.pipeline.decision_round(
                list(record.targets)
                + [(self.clog.log_name, record.counter)],
                txn=txn_hex, phase=phase, enqueue=lambda: send(peers),
            )
        else:
            events = send(peers)
            if self.runtime.profile.stabilization:
                yield from self.stabilize(self.clog.log_name, record.counter)
        if record.kind != ClogRecord.COMMIT:
            # Presumed abort: no quorum needed before answering the
            # client — a peer that misses the record learns the abort
            # from its own watchdog round.  Drain the acks off-path.
            def drain() -> Gen:
                yield sim.all_settled(list(events.values()))

            sim.process(drain(), name="decision-drain@%s" % (self.node or "?"))
            return True
        needed = ledger.commit_quorum - 1
        acks = 0
        conflicts = 0
        span = self.tracer.span(
            "twopc", "decision_wait", node=self.node, txn=txn_hex,
            needed=needed,
        )
        try:
            while acks < needed:
                round_start = self.runtime.now
                yield sim.any_of([
                    sim.all_settled(list(events.values())),
                    sim.timeout(RESOLUTION_RETRY_INTERVAL),
                ])
                retry = []
                for node, event in list(events.items()):
                    if not event.triggered:
                        continue
                    del events[node]
                    reply = event.value if event.ok else None
                    if (
                        reply is not None
                        and reply.msg_type == MsgType.ACK
                    ):
                        acks += 1
                        self.tracer.event(
                            "twopc", "decision-quorum", node=self.node,
                            txn=txn_hex, peer=node, acks=acks,
                            needed=needed,
                        )
                        continue
                    if (
                        reply is not None
                        and reply.msg_type == MsgType.FAIL
                        and reply.body
                    ):
                        # Write-once conflict: a completer already
                        # proposed abort into that peer's slot.
                        conflicts += 1
                        continue
                    retry.append(node)
                if acks >= needed:
                    break
                undecided = len(peers) - acks - conflicts
                if 1 + acks + undecided < ledger.commit_quorum:
                    return False
                if retry:
                    remainder = RESOLUTION_RETRY_INTERVAL - (
                        self.runtime.now - round_start
                    )
                    if remainder > 0.0:
                        yield sim.timeout(remainder)
                    events.update(send(retry))
                elif not events:
                    # Everyone settled, quorum still short and commit
                    # still "reachable" — impossible by arithmetic, but
                    # never spin on it.
                    return False
        finally:
            span.close(acks=acks, conflicts=conflicts)
        self.runtime.metrics.counter("decision.replicated").inc()
        return True

    def log_clog(self, record: ClogRecord) -> Gen:
        counter = yield from self.clog.append(record.encode())
        if record.kind in (ClogRecord.COMMIT, ClogRecord.ABORT):
            self.decisions[record.gid.encode()] = (
                record.kind, counter, tuple(record.targets)
            )
            self.tracer.event(
                "twopc", "decision", node=self.node,
                txn=record.gid.encode().hex(),
                kind="commit" if record.kind == ClogRecord.COMMIT else "abort",
                log=self.clog.log_name, counter=counter,
            )
        return counter

    # -- recovery support ------------------------------------------------------------
    def _on_resolve(self, message: TxMessage, src: str) -> Gen:
        """A recovering participant asks how ``gid`` was decided.

        Presumed abort: with no logged commit decision the transaction
        cannot have been acknowledged, so ABORT is always safe.
        """
        yield from self.runtime.op_overhead()
        gid_bytes = GlobalTxnId(message.node_id, message.txn_id).encode()
        decision, decision_counter, targets = self.decisions.get(
            gid_bytes, (ClogRecord.ABORT, 0, ())
        )
        if decision == ClogRecord.COMMIT and self.runtime.profile.stabilization:
            # The decision entry may sit in the unstable Clog suffix
            # (coordinator crashed between logging and stabilizing it);
            # a participant must not commit on an unprotected decision.
            # Only the decision's own entry matters — waiting on later
            # records (e.g. a COMPLETE mid-stabilization) would hold the
            # participant's locks past unrelated work.  Piggybacked
            # prepare targets the crashed coordinator collected but may
            # never have stabilized ride the same round: the asking
            # participant's recovered prepare record must be
            # rollback-protected before it commits on this answer.
            if self.pipeline is not None and targets:
                yield from self.pipeline.stabilize_group(
                    list(targets) + [(self.clog.log_name, decision_counter)],
                    txn=gid_bytes.hex(), phase="resolve",
                )
            else:
                yield from self.stabilize(
                    self.clog.log_name, decision_counter
                )
        verdict = b"commit" if decision == ClogRecord.COMMIT else b"abort"
        return TxMessage(
            MsgType.TXN_RESOLVE_REPLY,
            message.node_id,
            message.txn_id,
            message.op_id,
            verdict,
        )


class GlobalTxn:
    """A client-facing distributed transaction (Figure 2's lifecycle)."""

    def __init__(
        self,
        coordinator: Coordinator,
        gid: GlobalTxnId,
        optimistic: bool = False,
    ):
        self.coordinator = coordinator
        self.runtime = coordinator.runtime
        self.gid = gid
        self._op_seq = 0
        self._local_txn: Optional[PessimisticTxn] = None
        #: numeric node ids of remote participants touched so far.
        self.remote_participants: Set[int] = set()
        self.status = TxnStatus.ACTIVE
        #: distributed OCC (occ_distributed): execution takes no locks —
        #: reads are stateless versioned snapshots, writes buffer here
        #: at the coordinator — and PREPARE ships each participant its
        #: validate/write sets.
        self.optimistic = optimistic
        #: key -> first observed version (the validate set).
        self._occ_reads: Dict[bytes, int] = {}
        #: key -> buffered value (None = tombstone), insertion-ordered.
        self._occ_writes: Dict[bytes, Optional[bytes]] = {}
        #: per-participant PREPARE bodies, built at commit time.
        self._occ_bodies: Dict[int, bytes] = {}

    # -- helpers -----------------------------------------------------------------
    def _next_op(self) -> int:
        self._op_seq += 1
        return self._op_seq

    def _message(self, msg_type: int, body: bytes = b"") -> TxMessage:
        return TxMessage(
            msg_type,
            self.gid.node_id,
            self.gid.local_seq,
            self._next_op(),
            body,
        )

    def _local(self) -> PessimisticTxn:
        if self._local_txn is None:
            self._local_txn = self.coordinator.manager.begin_pessimistic(
                txn_id=self.gid.encode()
            )
        return self._local_txn

    def _address_of(self, node: int) -> str:
        return self.coordinator.addresses[node]

    def _check_active(self) -> None:
        if self.status != TxnStatus.ACTIVE:
            raise TransactionError("global txn %s is %s" % (self.gid, self.status))

    def _remote_call(self, node: int, message: TxMessage) -> Gen:
        self.remote_participants.add(node)
        try:
            reply = yield from self.coordinator.rpc.call(
                self._address_of(node), message
            )
        except NetworkError as exc:
            # The participant's NIC detached (crash) — the transport
            # fails the continuation instead of leaking it.  Surface a
            # synthetic FAIL so every call site takes its abort path.
            reply = TxMessage(
                MsgType.FAIL, message.node_id, message.txn_id, message.op_id,
                str(exc).encode(),
            )
        return reply

    # -- interactive operations (TXNGET / TXNPUT) ----------------------------------
    def get(self, key: bytes) -> Gen:
        self._check_active()
        if self.optimistic:
            value = yield from self._get_occ(key)
            return value
        owner = self.coordinator.partitioner(key)
        if owner == self.coordinator.node_numeric_id:
            try:
                value = yield from self._local().get(key)
            except TransactionAborted:
                yield from self._abort_remotes()
                self.status = TxnStatus.ABORTED
                raise
            return value
        reply = yield from self._remote_call(
            owner, self._message(MsgType.TXN_READ, _encode_read(key))
        )
        if reply.msg_type != MsgType.ACK:
            yield from self.rollback(failed_node=owner)
            raise TransactionAborted(reply.body.decode() or "remote read failed")
        return _decode_value_reply(reply.body)

    def _get_occ(self, key: bytes) -> Gen:
        """Lock-free versioned read (read-my-own-writes honoured)."""
        if key in self._occ_writes:
            return self._occ_writes[key]
        owner = self.coordinator.partitioner(key)
        if owner == self.coordinator.node_numeric_id:
            value, seq = yield from self.coordinator.manager.engine.get_with_seq(
                key
            )
        else:
            reply = yield from self._remote_call(
                owner,
                self._message(MsgType.TXN_READ_OCC, _encode_read(key)),
            )
            if reply.msg_type != MsgType.ACK:
                yield from self.rollback(failed_node=owner)
                raise TransactionAborted(
                    reply.body.decode() or "remote read failed"
                )
            value, seq = _decode_versioned_reply(reply.body)
        # First observed version wins: validation must prove it never
        # changed for the duration of the transaction.
        self._occ_reads.setdefault(key, seq)
        return value

    def put(self, key: bytes, value: bytes) -> Gen:
        yield from self._write(key, value)

    def delete(self, key: bytes) -> Gen:
        yield from self._write(key, None)

    def scan(self, start: bytes, end: Optional[bytes], limit=None) -> Gen:
        """Range scan within one shard (``start`` determines the owner).

        TPC-C's scans are all warehouse-local, so a scan never spans
        shards; a cross-shard range raises.
        """
        self._check_active()
        if self.optimistic:
            rows = yield from self._scan_occ(start, end, limit)
            return rows
        owner = self.coordinator.partitioner(start)
        if owner == self.coordinator.node_numeric_id:
            try:
                rows = yield from self._local().scan(start, end, limit)
            except TransactionAborted:
                yield from self._abort_remotes()
                self.status = TxnStatus.ABORTED
                raise
            return rows
        reply = yield from self._remote_call(
            owner,
            self._message(MsgType.TXN_SCAN, encode_scan_request(start, end, limit)),
        )
        if reply.msg_type != MsgType.ACK:
            yield from self.rollback(failed_node=owner)
            raise TransactionAborted(reply.body.decode() or "remote scan failed")
        return decode_scan_reply(reply.body)

    def _scan_occ(self, start: bytes, end: Optional[bytes], limit) -> Gen:
        """Stateless read-committed scan, overlaid with buffered writes.

        Scans stay read-committed in every transaction flavour (see
        :meth:`LocalTransaction.scan`), so the owner does not join the
        participant set for a scan-only contact.
        """
        owner = self.coordinator.partitioner(start)
        if owner == self.coordinator.node_numeric_id:
            yield from self.runtime.op_overhead()
            rows = yield from self.coordinator.manager.engine.scan(
                start, end, limit=None
            )
        else:
            message = self._message(
                MsgType.TXN_SCAN_OCC, encode_scan_request(start, end, None)
            )
            try:
                reply = yield from self.coordinator.rpc.call(
                    self._address_of(owner), message
                )
            except NetworkError as exc:
                yield from self.rollback(failed_node=owner)
                raise TransactionAborted("remote scan failed: %s" % exc)
            if reply.msg_type != MsgType.ACK:
                yield from self.rollback(failed_node=owner)
                raise TransactionAborted(
                    reply.body.decode() or "remote scan failed"
                )
            rows = decode_scan_reply(reply.body)
        merged = dict(rows)
        for key, value in self._occ_writes.items():
            if key >= start and (end is None or key < end):
                if value is None:
                    merged.pop(key, None)
                else:
                    merged[key] = value
        result = sorted(merged.items())
        if limit is not None:
            result = result[:limit]
        return result

    def _write(self, key: bytes, value: Optional[bytes]) -> Gen:
        self._check_active()
        if self.optimistic:
            # Lock-free execution: the write buffers at the coordinator
            # and ships inside the owner's PREPARE — zero execution-phase
            # round trips for writes.
            yield from self.runtime.op_overhead()
            self._occ_writes[key] = value
            owner = self.coordinator.partitioner(key)
            if owner != self.coordinator.node_numeric_id:
                self.remote_participants.add(owner)
            return
        owner = self.coordinator.partitioner(key)
        if owner == self.coordinator.node_numeric_id:
            try:
                if value is None:
                    yield from self._local().delete(key)
                else:
                    yield from self._local().put(key, value)
            except TransactionAborted:
                yield from self._abort_remotes()
                self.status = TxnStatus.ABORTED
                raise
            return
        reply = yield from self._remote_call(
            owner, self._message(MsgType.TXN_WRITE, _encode_write(key, value))
        )
        if reply.msg_type != MsgType.ACK:
            yield from self.rollback(failed_node=owner)
            raise TransactionAborted(reply.body.decode() or "remote write failed")

    # -- batched multi-put (coordinators may defer transmissions, §V-A) -------------
    def put_many(self, pairs: List[Tuple[bytes, bytes]]) -> Gen:
        """Enqueue writes to all owners before yielding (Figure 2, 1–2).

        Because every remote write is enqueued before the first yield,
        writes sharing an owner coalesce into the same transport batch.
        """
        self._check_active()
        if self.optimistic:
            for key, value in pairs:
                yield from self._write(key, value)
            return
        events = []
        owners = []
        for key, value in pairs:
            owner = self.coordinator.partitioner(key)
            if owner == self.coordinator.node_numeric_id:
                try:
                    yield from self._local().put(key, value)
                except TransactionAborted:
                    yield from self._abort_remotes()
                    self.status = TxnStatus.ABORTED
                    raise
            else:
                self.remote_participants.add(owner)
                owners.append(owner)
                events.append(
                    self.coordinator.rpc.enqueue(
                        self._address_of(owner),
                        self._message(MsgType.TXN_WRITE, _encode_write(key, value)),
                    )
                )
        yield self.runtime.sim.all_settled(events)
        for owner, event in zip(owners, events):
            if not event.ok:
                # The owner crashed mid-write: abort everyone reachable.
                yield from self.rollback(failed_node=owner)
                raise TransactionAborted("remote write failed: %s" % event.value)
            reply = event.value
            if reply.msg_type != MsgType.ACK:
                yield from self.rollback()
                raise TransactionAborted(reply.body.decode() or "remote write failed")

    # -- commit / abort ---------------------------------------------------------------
    def commit(self) -> Gen:
        """TXNCOMMIT: single-node fast path or full secure 2PC."""
        self._check_active()
        if self.optimistic:
            counter = yield from self._commit_occ()
            return counter
        if not self.remote_participants:
            # Single-node transaction (§V-B): no 2PC needed.
            counter = 0
            if self._local_txn is not None:
                counter = yield from self._local_txn.commit()
            self.status = TxnStatus.COMMITTED
            self.coordinator.local_commits += 1
            return counter
        yield from self._commit_distributed()
        return 0

    def _commit_occ(self) -> Gen:
        """Commit a distributed OCC transaction.

        Groups the validate/write sets per owner, builds each
        participant's PREPARE body, and runs either the single-node fast
        path (validate + group commit locally, no 2PC) or the normal
        distributed commit with validation riding PREPARE.
        """
        coordinator = self.coordinator
        local_id = coordinator.node_numeric_id
        reads_by: Dict[int, List[Tuple[bytes, int]]] = {}
        writes_by: Dict[int, List[Tuple[bytes, Optional[bytes]]]] = {}
        for key, seq in self._occ_reads.items():
            reads_by.setdefault(coordinator.partitioner(key), []).append(
                (key, seq)
            )
        for key, value in self._occ_writes.items():
            writes_by.setdefault(coordinator.partitioner(key), []).append(
                (key, value)
            )
        owners = set(reads_by) | set(writes_by)
        self.remote_participants.update(owners - {local_id})
        if local_id in owners:
            txn = coordinator.manager.begin_occ_distributed(
                txn_id=self.gid.encode()
            )
            txn.load(reads_by.get(local_id, []), writes_by.get(local_id, []))
            self._local_txn = txn
        if not self.remote_participants:
            counter = yield from self._commit_occ_local()
            return counter
        self._occ_bodies = {
            node: encode_occ_prepare(
                reads_by.get(node, []), writes_by.get(node, [])
            )
            for node in self.remote_participants
        }
        yield from self._commit_distributed()
        return 0

    def _commit_occ_local(self) -> Gen:
        """Single-node OCC fast path (§V-B): no Clog, no 2PC rounds."""
        coordinator = self.coordinator
        if self._local_txn is None:
            self.status = TxnStatus.COMMITTED
            coordinator.local_commits += 1
            return 0
        ok = yield from self._validate_local_occ(self._local_txn)
        if not ok:
            self.status = TxnStatus.ABORTED
            coordinator.aborts += 1
            raise TransactionAborted("validation conflict")
        counter = yield from self._local_txn.commit()
        self.status = TxnStatus.COMMITTED
        coordinator.local_commits += 1
        return counter

    def _validate_local_occ(self, txn) -> Gen:
        """Validate + pin the coordinator's own half; False on conflict
        (the half has rolled itself back)."""
        metrics = self.runtime.metrics
        span = self.coordinator.tracer.span(
            "twopc", "validate", node=self.coordinator.node,
            txn=self.gid.encode().hex(),
            reads=len(txn.reads), writes=len(txn.buffer),
        )
        try:
            yield from txn.validate_and_pin()
        except TransactionAborted:
            span.close(outcome="conflict")
            metrics.counter("occ.conflicts").inc()
            return False
        span.close(outcome="ok")
        metrics.counter("occ.validated").inc()
        return True

    def _commit_distributed(self) -> Gen:
        # Root of the transaction's cross-node span DAG: the trace id is
        # the global transaction id, and every span the commit touches —
        # locally, on participants (via the sealed RPC trace context) and
        # in the counter service — chains under this one.  Its duration
        # is the distributed commit latency the critical-path analyzer
        # decomposes.
        txn_hex = self.gid.encode().hex()
        root = self.coordinator.tracer.span(
            "twopc", "txn", node=self.coordinator.node, txn=txn_hex,
            trace=txn_hex, participants=len(self.remote_participants),
        )
        try:
            yield from self._commit_distributed_body()
        finally:
            root.close(
                outcome="commit"
                if self.status == TxnStatus.COMMITTED else "abort"
            )

    def _commit_distributed_body(self) -> Gen:
        coordinator = self.coordinator
        tracer = coordinator.tracer
        metrics = self.runtime.metrics
        txn_hex = self.gid.encode().hex()
        participants = sorted(self.remote_participants)
        record_participants = participants + (
            [coordinator.node_numeric_id] if self._local_txn is not None else []
        )
        phase_start = self.runtime.now
        span = tracer.span(
            "twopc", "prepare", node=coordinator.node, txn=txn_hex,
            participants=len(participants),
        )
        # 5: log the prepare intent to the Clog with its trusted counter.
        prepare_counter = yield from coordinator.log_clog(
            ClogRecord(ClogRecord.PREPARE, self.gid, record_participants)
        )
        # Prepare everyone (remote prepares batched; local in parallel).
        # A participant that does not answer within the vote timeout is
        # counted as a NO vote — a crashed participant must not block
        # the decision (it learns the abort when it recovers).  The
        # broadcast enqueues every destination in one instant, so each
        # destination's PREPARE coalesces with concurrent rounds.
        # Under OCC each PREPARE carries that participant's validate and
        # write sets; bodies differ per destination but the broadcast
        # still enqueues them in one instant, so the transport's doorbell
        # window coalesces per destination as before.
        events = coordinator.rpc.broadcast(
            [
                (
                    self._address_of(node),
                    self._message(
                        MsgType.TXN_PREPARE,
                        self._occ_bodies.get(node)
                        or (encode_occ_prepare([], []) if self.optimistic
                            else b""),
                    ),
                )
                for node in participants
            ]
        )
        if self._local_txn is not None:
            events.append(
                self.runtime.sim.process(
                    self._prepare_local(), name="local-prepare"
                )
            )
        yield self.runtime.sim.any_of(
            [
                self.runtime.sim.all_settled(events),
                self.runtime.sim.timeout(PREPARE_VOTE_TIMEOUT),
            ]
        )
        # Harvest votes; under piggybacking a YES vote carries the
        # voter's prepare-record (log, counter) target — the local
        # prepare returns the tuple directly, remote ACK bodies carry
        # an encoded counter vector.
        vote_commit = True
        prepare_targets: List[Tuple[str, int]] = []
        for event in events:
            if not (event.triggered and event.ok):
                vote_commit = False
                continue
            value = event.value
            if value is True:
                continue
            if isinstance(value, tuple):
                prepare_targets.append(value)
                continue
            if getattr(value, "msg_type", None) == MsgType.ACK:
                if value.body:
                    prepare_targets.extend(decode_counter_vector(value.body))
                continue
            vote_commit = False
        span.close(vote="commit" if vote_commit else "abort")
        metrics.histogram("twopc.prepare_s").observe(
            self.runtime.now - phase_start
        )
        # 6-7: log + stabilize the decision before acting on it.  With
        # piggybacking the participants' prepare targets fold into the
        # same group-wide round: one echo broadcast rollback-protects
        # every prepare record *and* the Clog decision entry.
        phase_start = self.runtime.now
        span = tracer.span(
            "twopc", "decision_log", node=coordinator.node, txn=txn_hex
        )
        decision_kind = ClogRecord.COMMIT if vote_commit else ClogRecord.ABORT
        decision_counter = yield from coordinator.log_clog(
            ClogRecord(
                decision_kind, self.gid, record_participants,
                targets=prepare_targets if vote_commit else None,
            )
        )
        abort_reason = "a participant failed to prepare"
        if coordinator.replication:
            # Non-blocking commit: replicate the decision record to the
            # whole cluster (riding the piggybacked group round) and,
            # for commits, wait for a quorum of slot acknowledgements
            # before the client can be answered — any participant can
            # then finish the transaction without this coordinator.
            decision = DecisionRecord(
                decision_kind, self.gid, record_participants,
                prepare_targets if vote_commit else [],
                coordinator.clog.log_name, decision_counter,
                coordinator.node_numeric_id,
            )
            replicated = yield from coordinator._replicate_decision(
                decision, txn_hex
            )
            if vote_commit and not replicated:
                # Completer abort slots beat the replication: the commit
                # can never reach its quorum, so no client was (or ever
                # will be) acknowledged.  Supersede the Clog COMMIT with
                # an ABORT and take the abort path below.
                vote_commit = False
                abort_reason = (
                    "commit decision superseded by a completer abort quorum"
                )
                superseded = yield from coordinator.log_clog(
                    ClogRecord(
                        ClogRecord.ABORT, self.gid, record_participants
                    )
                )
                if coordinator.pipeline is not None:
                    coordinator.pipeline.background(
                        coordinator.clog.log_name, superseded
                    )
        elif self.runtime.profile.stabilization:
            if coordinator.piggyback:
                # Aborted prepares need no rollback protection (presumed
                # abort): only a commit decision carries the group.
                yield from coordinator.pipeline.stabilize_group(
                    (prepare_targets if vote_commit else [])
                    + [(coordinator.clog.log_name, decision_counter)],
                    txn=txn_hex, phase="decision",
                )
            else:
                yield from coordinator.stabilize(
                    coordinator.clog.log_name, decision_counter
                )
        span.close()
        metrics.histogram("twopc.decision_s").observe(
            self.runtime.now - phase_start
        )
        phase_start = self.runtime.now
        if not vote_commit:
            span = tracer.span(
                "twopc", "abort", node=coordinator.node, txn=txn_hex
            )
            yield from self._broadcast_resolution(
                MsgType.TXN_ABORT, participants,
                max_rounds=2 if coordinator.replication else None,
            )
            if self._local_txn is not None:
                if self._local_txn.status == TxnStatus.PREPARED:
                    yield from self._local_txn.abort_prepared()
                else:
                    yield from self._local_txn.rollback()
                tracer.event(
                    "twopc", "abort_apply", node=coordinator.node, txn=txn_hex
                )
            span.close()
            self.status = TxnStatus.ABORTED
            coordinator.aborts += 1
            raise TransactionAborted(abort_reason)
        # Commit phase: no stabilization wait needed before replying.
        span = tracer.span(
            "twopc", "commit", node=coordinator.node, txn=txn_hex
        )
        replies = yield from self._broadcast_resolution(
            MsgType.TXN_COMMIT, participants,
            max_rounds=2 if coordinator.replication else None,
        )
        # Symmetric apply-side piggyback: COMMIT/ACK bodies carry the
        # participants' commit-record targets; they join the background
        # COMPLETE round instead of N per-node background fibers.
        apply_targets: List[Tuple[str, int]] = []
        for reply in replies.values():
            if getattr(reply, "body", b""):
                apply_targets.extend(decode_counter_vector(reply.body))
        if self._local_txn is not None:
            if coordinator.piggyback:
                counter, log_name = yield from self._local_txn.commit_prepared_async(
                    defer_stabilization=True
                )
                apply_targets.append((log_name, counter))
            else:
                yield from self._local_txn.commit_prepared_async()
            tracer.event(
                "twopc", "commit_apply", node=coordinator.node, txn=txn_hex
            )
        span.close()
        metrics.histogram("twopc.commit_s").observe(
            self.runtime.now - phase_start
        )
        self.status = TxnStatus.COMMITTED
        coordinator.distributed_commits += 1

        # Off the critical path: record that every participant committed,
        # so recovery does not re-drive this transaction.  Under
        # piggybacking the COMPLETE entry and every apply-side target
        # share one more group-wide round.
        def log_complete() -> Gen:
            counter = yield from coordinator.log_clog(
                ClogRecord(ClogRecord.COMPLETE, self.gid, record_participants)
            )
            if self.runtime.profile.stabilization:
                if coordinator.piggyback:
                    yield from coordinator.pipeline.stabilize_group(
                        apply_targets
                        + [(coordinator.clog.log_name, counter)],
                        txn=txn_hex, phase="complete",
                    )
                else:
                    yield from coordinator.stabilize(
                        coordinator.clog.log_name, counter
                    )

        self.runtime.sim.process(log_complete(), name="clog-complete")

    def _prepare_local(self) -> Gen:
        txn = self._local()
        if self.optimistic:
            # Validation runs inside the same window as the remote
            # PREPAREs — the local half of the OCC-in-PREPARE rule.
            ok = yield from self._validate_local_occ(txn)
            if not ok:
                return False
        try:
            counter, log_name = yield from txn.prepare()
        except TransactionAborted:
            return False
        if self.coordinator.piggyback:
            # Return the target: it joins the group-wide decision round.
            self.coordinator.tracer.event(
                "twopc", "prepare_target", node=self.coordinator.node,
                txn=self.gid.encode().hex(), log=log_name, counter=counter,
                coord=self.coordinator.node_numeric_id,
            )
            return (log_name, counter)
        if self.runtime.profile.stabilization:
            yield from self.coordinator.stabilize(log_name, counter)
        self.coordinator.tracer.event(
            "twopc", "prepare_ack", node=self.coordinator.node,
            txn=self.gid.encode().hex(), log=log_name, counter=counter,
            coord=self.coordinator.node_numeric_id,
        )
        return True

    def _broadcast_resolution(self, msg_type: int, participants: List[int],
                              max_rounds: Optional[int] = None) -> Gen:
        """Deliver the decision to every participant, retrying forever.

        The decision is already durable in the Clog, so retrying is
        always safe: a participant that already acted replies ACK and
        ignores the duplicate instruction (each retry carries a fresh
        operation id, so the at-most-once filter does not eat it).

        ``max_rounds`` bounds the retries when the decision is
        independently recoverable: under decision replication a quorum
        of slots outlives this coordinator, so delivery is best-effort —
        a participant that misses every round finishes via its decision
        watchdog (the completer protocol) instead of wedging this fiber
        on a permanently dead peer.  The legacy path must retry forever
        because the decision exists only in this coordinator's Clog.

        Returns the collected replies (node -> TxMessage): COMMIT ACK
        bodies carry the participants' piggybacked apply-side targets.
        """
        pending = set(participants)
        replies: Dict[int, TxMessage] = {}
        rounds = 0
        while pending:
            rounds += 1
            nodes = sorted(pending)
            events = dict(zip(nodes, self.coordinator.rpc.broadcast(
                [(self._address_of(node), self._message(msg_type))
                 for node in nodes]
            )))
            round_start = self.runtime.now
            yield self.runtime.sim.any_of(
                [
                    self.runtime.sim.all_settled(list(events.values())),
                    self.runtime.sim.timeout(RESOLUTION_RETRY_INTERVAL),
                ]
            )
            for node, event in events.items():
                if event.triggered and event.ok:
                    pending.discard(node)
                    replies[node] = event.value
            if pending:
                if max_rounds is not None and rounds >= max_rounds:
                    break
                # A crashed destination settles its events instantly
                # (failed), so pace the retries: without this the loop
                # would spin at a single simulated instant.
                remainder = RESOLUTION_RETRY_INTERVAL - (
                    self.runtime.now - round_start
                )
                if remainder > 0.0:
                    yield self.runtime.sim.timeout(remainder)
        return replies

    def rollback(self, failed_node: Optional[int] = None) -> Gen:
        """TXNROLLBACK: abort everywhere (presumed abort, nothing logged)."""
        if self.status != TxnStatus.ACTIVE:
            return
        self.status = TxnStatus.ABORTED
        self.coordinator.aborts += 1
        yield from self._abort_remotes(skip=failed_node)
        if self._local_txn is not None:
            yield from self._local_txn.rollback()

    def _abort_remotes(self, skip: Optional[int] = None) -> Gen:
        participants = [n for n in sorted(self.remote_participants) if n != skip]
        if participants:
            yield from self._broadcast_resolution(MsgType.TXN_ABORT, participants)
