"""Global transaction identifiers.

"For each Tx, a TREATY's node initialises a global Tx handle that is
uniquely identified by a monotonically [increasing] sequence number and
the node id" (§V-A).
"""

from __future__ import annotations

import itertools
import struct
from dataclasses import dataclass

__all__ = ["GlobalTxnId", "TxnIdAllocator", "EPOCH_SHIFT"]

_STRUCT = struct.Struct("<QQ")

#: the coordinator's boot epoch occupies the local sequence's high bits;
#: ``local_seq >> EPOCH_SHIFT`` recovers the epoch a txn was begun in.
EPOCH_SHIFT = 48


@dataclass(frozen=True, order=True)
class GlobalTxnId:
    """Cluster-unique transaction identity: (coordinator node, local seq)."""

    node_id: int
    local_seq: int

    def encode(self) -> bytes:
        return _STRUCT.pack(self.node_id, self.local_seq)

    @classmethod
    def decode(cls, data: bytes) -> "GlobalTxnId":
        node_id, local_seq = _STRUCT.unpack(data[: _STRUCT.size])
        return cls(node_id, local_seq)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return "gtx(%d:%d)" % (self.node_id, self.local_seq)


class TxnIdAllocator:
    """Monotonic allocator of global transaction ids for one coordinator.

    The boot ``epoch`` occupies the high bits of the local sequence so
    ids never collide across a coordinator's crashes — pre-crash ids
    (and their at-most-once operation triples) stay burned forever.
    """

    def __init__(self, node_id: int, epoch: int = 0):
        self.node_id = node_id
        self.epoch = epoch
        self._seq = itertools.count(1)

    def next(self) -> GlobalTxnId:
        return GlobalTxnId(
            self.node_id, (self.epoch << EPOCH_SHIFT) | next(self._seq)
        )
