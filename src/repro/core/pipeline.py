"""The per-node durability pipeline (group commit + stabilization + counters).

Before this module existed the durability stack was three independently
queued layers: the :class:`~repro.txn.group_commit.GroupCommitter`
batched WAL writes, the :class:`~repro.core.stabilization.Stabilizer`
gated each transaction on its own counter wait, and the
:class:`~repro.core.trusted_counter.CounterClient` ran one round driver
per log.  Every layer amortized within itself, but each handed the next
layer one request per transaction — so a group commit of 16 transactions
still produced 16 gate waits racing the round driver, and a WAL round
and a Clog round never shared an echo broadcast.

:class:`DurabilityPipeline` owns all three and schedules them as one
pipeline:

1. the counter protocol is *vectored* — one echo-broadcast round carries
   ``(log, value)`` targets for every pending log, so WAL batches and
   2PC decision entries stabilize together (``counter_vectoring``);
2. the group-commit leader stabilizes its batch with a *single* request
   covering the batch's highest WAL counter; followers share one wait
   (one event) instead of N gate waits;
3. the group-commit window is adaptive: the leader waits a bounded
   multiple of the observed submit arrival gap before draining, instead
   of the fixed ``timeout(0)`` (``group_commit_window``).

The invariants are unchanged: a transaction is acknowledged only after
its WAL entry's counter is stable, 2PC decision entries are stabilized
before participants act, and the monitor's I1–I4 checks still learn
stability exclusively from counter-advance events.

The pipeline composes with the transport's doorbell batching
(``docs/NETWORK.md``): each vectored echo round is a same-instant
fan-out of UPDATE/CONFIRM messages to every counter peer, issued via
:meth:`SecureRpc.broadcast`, so the eRPC layer coalesces a round's
messages per destination into one sealed frame.  Group commit amortizes
*rounds per transaction*; transport batching amortizes *frames and seal
operations per round* — the two multiply.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Sequence, Tuple

from ..config import ClusterConfig
from ..sim.core import Event
from ..tee.runtime import NodeRuntime
from ..txn.group_commit import GroupCommitter
from .rollback import RollbackProtection, make_backend
from .stabilization import FreshnessWitness, Stabilizer
from .trusted_counter import CounterClient

__all__ = ["DurabilityPipeline"]

Gen = Generator[Event, Any, Any]


class DurabilityPipeline:
    """One node's unified durability scheduler.

    Construction order mirrors the dependency chain: the pipeline wraps
    an existing :class:`CounterClient` with a :class:`Stabilizer`, and
    :meth:`attach_engine` later binds the node's storage engine with a
    pipeline-aware :class:`GroupCommitter`.
    """

    def __init__(
        self,
        runtime: NodeRuntime,
        counter_client: Optional[CounterClient],
        config: ClusterConfig,
    ):
        self.runtime = runtime
        self.counter_client = counter_client
        self.config = config
        #: the rollback-protection backend (sync round / coverage
        #: promises / LCM echo) every stabilization request routes
        #: through — see :mod:`repro.core.rollback`.
        self.rollback: Optional[RollbackProtection] = make_backend(
            runtime, counter_client, config
        )
        self.stabilizer = Stabilizer(
            runtime, counter_client, backend=self.rollback
        )
        #: stable-sequence frontier for coordinator-free snapshot reads
        #: (``read_only_snapshot``) — fed by the group committer's WAL
        #: watermarks, queried by read-only transaction commits.
        self.witness = FreshnessWitness(runtime, self.stabilizer)
        self.committer: Optional[GroupCommitter] = None

    @property
    def enabled(self) -> bool:
        """Whether stabilization actually runs under this profile."""
        return self.stabilizer.enabled

    def attach_engine(self, engine) -> GroupCommitter:
        """Build the engine's group committer, bound to this pipeline."""
        self.committer = GroupCommitter(
            self.runtime,
            engine,
            max_group=self.config.group_commit_max,
            window=self.config.group_commit_window,
            window_cap=self.config.group_commit_window_cap,
            pipeline=self,
        )
        return self.committer

    # -- stabilization entry points ------------------------------------------
    def stabilize(self, log_name: str, counter: int) -> Gen:
        """Wait until ``(log, counter)`` is rollback-protected."""
        yield from self.stabilizer(log_name, counter)

    def stabilize_many(self, targets: Sequence[Tuple[str, int]]) -> Gen:
        """Wait until every target is rollback-protected (one request)."""
        yield from self.stabilizer.many(targets)

    def stabilize_group(
        self,
        targets: Sequence[Tuple[str, int]],
        txn: Optional[str] = None,
        phase: str = "decision",
    ) -> Gen:
        """Stabilize a *group-wide* target set in one request.

        The cross-node half of the pipeline: a coordinator calls this
        with the prepare targets its participants piggybacked on their
        PREPARE-ACKs plus its own Clog decision target, so one vectored
        echo-broadcast round covers the whole distributed transaction.
        Log names are globally unique, so any node's counter client can
        stabilize any node's log; the targets merge with whatever local
        group-commit batch is already pending a round.

        ``phase`` labels round provenance in traces ("decision" for the
        pre-COMMIT round, "complete" for the background apply/COMPLETE
        round).
        """
        if not self.enabled:
            return
        targets = [(log, counter) for log, counter in targets if counter > 0]
        if not targets:
            return
        self.runtime.tracer.event(
            "stabilize", "group_begin", node=self.runtime.name or None,
            txn=txn, phase=phase, targets=len(targets),
            logs=sorted(log for log, _ in targets),
        )
        span = self.runtime.tracer.span(
            "stabilize", "group_round", node=self.runtime.name or None,
            txn=txn, phase=phase, targets=len(targets),
        )
        try:
            yield from self.stabilizer.many(targets)
        finally:
            span.close()
        metrics = self.runtime.metrics
        metrics.counter("stabilize.group_rounds").inc()
        metrics.histogram(
            "stabilize.group_size", edges=(1, 2, 4, 8, 16, 32)
        ).observe(len(targets))

    def decision_round(
        self,
        targets: Sequence[Tuple[str, int]],
        txn: Optional[str] = None,
        phase: str = "decision",
        enqueue=None,
    ) -> Gen:
        """One group round that doubles as decision replication.

        ``enqueue`` (if given) is called synchronously *before* the
        counter round's first frames are enqueued, so the transport's
        doorbell window coalesces the DECISION_RECORD broadcast and the
        round's COUNTER frames to each peer into the same sealed frames
        — replicating the decision adds no frames on an idle window.
        Returns whatever ``enqueue`` returned (the broadcast events);
        the stabilization itself still covers ``targets`` exactly as
        :meth:`stabilize_group` would.
        """
        events = enqueue() if enqueue is not None else None
        yield from self.stabilize_group(targets, txn=txn, phase=phase)
        return events

    def background(self, log_name: str, counter: int) -> None:
        """Fire-and-forget stabilization (commit records, GC edits)."""
        self.stabilizer.background(log_name, counter)

    def mean_wait(self) -> float:
        return self.stabilizer.mean_wait()
