"""Treaty's core: secure 2PC, stabilization, attestation, cluster, clients."""

from .cas import ConfigurationService, LocalAttestationService, NodeCredentials
from .client import ClientMachine, ClientSession, ClientTxn, FrontEnd
from .cluster import TreatyCluster, hash_partitioner
from .ids import GlobalTxnId, TxnIdAllocator
from .node import TreatyNode
from .pipeline import DurabilityPipeline
from .recovery import (
    StableCounterResolver,
    crash_and_recover,
    rollback_attack,
    snapshot_node_disk,
    tamper_attack,
)
from .stabilization import Stabilizer
from .trusted_counter import CounterClient, CounterReplica
from .twopc import ClogRecord, Coordinator, GlobalTxn, Participant

__all__ = [
    "ClientMachine",
    "ClientSession",
    "ClientTxn",
    "ClogRecord",
    "ConfigurationService",
    "Coordinator",
    "CounterClient",
    "CounterReplica",
    "DurabilityPipeline",
    "FrontEnd",
    "GlobalTxn",
    "GlobalTxnId",
    "LocalAttestationService",
    "NodeCredentials",
    "Participant",
    "StableCounterResolver",
    "Stabilizer",
    "TreatyCluster",
    "TreatyNode",
    "TxnIdAllocator",
    "crash_and_recover",
    "hash_partitioner",
    "rollback_attack",
    "snapshot_node_disk",
    "tamper_attack",
]
