"""Cluster assembly: nodes, CAS bootstrap, clients, partitioning.

Mirrors the paper's testbed: N Treaty nodes on a 40 GbE fabric, client
machines on a secondary 1 Gb/s network, a CAS hosted in the data center,
and Intel's IAS reachable (slowly) for the one-time bootstrap.
"""

from __future__ import annotations

import zlib
from typing import Callable, Dict, List, Optional

from ..config import ClusterConfig, EnvProfile, TREATY_FULL
from ..crypto.keys import KeyRing, derive_key
from ..net.simnet import Fabric
from ..obs import Observability, monitor_enabled_by_default
from ..sim.core import Simulator
from ..tee.attestation import IntelAttestationService
from ..tee.runtime import NodeRuntime
from .cas import ConfigurationService, LocalAttestationService
from .client import ClientMachine, ClientSession
from .node import TreatyNode

__all__ = ["TreatyCluster", "hash_partitioner"]


def hash_partitioner(num_nodes: int) -> Callable[[bytes], int]:
    """Deterministic key→shard mapping (CRC-based, stable across runs)."""

    def partition(key: bytes) -> int:
        return zlib.crc32(key) % num_nodes

    return partition


class TreatyCluster:
    """A complete Treaty deployment inside one simulator."""

    def __init__(
        self,
        profile: EnvProfile = TREATY_FULL,
        config: Optional[ClusterConfig] = None,
        num_nodes: Optional[int] = None,
        partitioner: Optional[Callable[[bytes], int]] = None,
    ):
        self.config = config or ClusterConfig()
        if num_nodes is None:
            num_nodes = self.config.num_nodes
        self.num_nodes = num_nodes
        if self.config.counter_quorum > num_nodes:
            # A protection group cannot require more members than exist
            # (single-node deployments still get rollback protection,
            # with correspondingly weaker fault tolerance).
            from dataclasses import replace as _replace

            self.config = _replace(self.config, counter_quorum=num_nodes)
        self.profile = profile
        self.sim = Simulator()
        # Observability goes in before any component is built so that
        # everything caching ``tracer_of(sim)`` at construction sees it.
        self.obs = Observability(
            self.sim,
            tracing=self.config.tracing,
            monitor=(
                self.config.monitor
                if self.config.monitor is not None
                else monitor_enabled_by_default()
            ),
            require_stabilization=profile.stabilization,
            liveness_timeout=self.config.monitor_liveness_timeout_s,
            flight_recorder=self.config.flight_recorder,
            trace_ring_spans=self.config.trace_ring_spans,
            timeseries=self.config.timeseries,
            timeseries_window_s=self.config.timeseries_window_s,
            incidents=self.config.incidents,
            tail_quantile=self.config.tail_quantile,
            tail_warmup=self.config.tail_warmup,
            max_exemplars=self.config.max_exemplars,
            incident_occ_storm_conflicts=(
                self.config.incident_occ_storm_conflicts
            ),
            incident_lock_convoy_s=self.config.incident_lock_convoy_s,
        )
        self.fabric = Fabric(self.sim, mtu=self.config.costs.net_mtu)
        self.obs.hub.add("fabric", self.fabric.metrics)
        seed_bytes = self.config.seed.to_bytes(8, "little") * 4
        self._manufacturer_seed = derive_key(seed_bytes, "manufacturer")
        self._root_key = derive_key(seed_bytes, "cluster-root")
        self.ias = IntelAttestationService(
            self.sim, self.config.costs, self._manufacturer_seed
        )
        self.addresses: Dict[int, str] = {
            i: "node%d" % i for i in range(num_nodes)
        }
        self.partitioner = partitioner or hash_partitioner(num_nodes)
        # The CAS runs on a node in the network (its own enclave runtime).
        self._cas_runtime = NodeRuntime(self.sim, profile, self.config,
                                        name="cas")
        self.obs.hub.add("cas", self._cas_runtime.metrics)
        self.cas = ConfigurationService(
            self._cas_runtime,
            self.ias,
            self._root_key,
            {("node%d" % i): address for i, address in self.addresses.items()},
        )
        self.nodes: List[TreatyNode] = [
            TreatyNode(
                self.sim,
                self.fabric,
                "node%d" % i,
                i,
                profile,
                self.config,
                derive_key(self._manufacturer_seed, "platform", str(i)),
                self.addresses,
                self.partitioner,
            )
            for i in range(num_nodes)
        ]
        self.client_machines: List[ClientMachine] = []
        self._started = False

    # -- lifecycle -----------------------------------------------------------
    def _bootstrap(self):
        """CAS attestation chain + node startup (§VI trust establishment)."""
        from ..tee.attestation import PlatformQuotingEnclave

        cas_qe = PlatformQuotingEnclave("cas-host", self._manufacturer_seed)
        self.ias.register_platform(cas_qe)
        yield from self.cas.attest_self(cas_qe)
        for node in self.nodes:
            self.ias.register_platform(node.qe)
            node.las = LocalAttestationService(
                self._cas_runtime, node.name, self._manufacturer_seed
            )
            yield from self.cas.register_las(node.las, node.qe)
        for node in self.nodes:
            yield from node.start(self.cas)

    def start(self) -> "TreatyCluster":
        """Run the full trust-establishment + startup sequence."""
        if self._started:
            return self
        self.sim.run_process(self._bootstrap(), name="cluster-bootstrap")
        self._started = True
        return self

    def run(self, body, name="main"):
        """Drive one generator to completion on the cluster's simulator."""
        return self.sim.run_process(body, name=name)

    # -- clients ---------------------------------------------------------------
    def keyring(self) -> KeyRing:
        """The cluster keyring (held by attested enclaves and clients)."""
        return KeyRing(self._root_key)

    def client_machine(self, name: Optional[str] = None) -> ClientMachine:
        machine = ClientMachine(
            self.sim,
            self.fabric,
            name or ("client%d" % len(self.client_machines)),
            self.profile,
            self.config,
            self.keyring(),
        )
        self.client_machines.append(machine)
        return machine

    def session(
        self, machine: ClientMachine, coordinator: int = 0
    ) -> ClientSession:
        """Open a client session against ``nodes[coordinator]``.

        The session learns every node's front address and the cluster
        partitioner so that (a) read-only transactions route each read
        to the key's owner (coordinator-free snapshot reads, gated on
        ``read_only_snapshot``), and (b) a client whose coordinator dies
        mid-commit can poll the survivors for the outcome.
        """
        return machine.session(
            self.nodes[coordinator].front_address,
            routes=[node.front_address for node in self.nodes],
            partitioner=self.partitioner,
            snapshot_reads=self.config.read_only_snapshot,
        )

    # -- fault injection -----------------------------------------------------------
    def crash_node(self, index: int) -> None:
        self.nodes[index].crash()

    def recover_node(self, index: int):
        """Generator: run the recovery protocol for one node."""
        return self.nodes[index].recover(self.cas)
