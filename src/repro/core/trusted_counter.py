"""Asynchronous trusted counter service (ROTE-style echo broadcast, §VI).

"TREATY's trusted counter service implements an echo broadcast protocol
with an extra confirmation message in the end.  A sender-enclave (SE)
sends the counter update to all enclaves of the protection group.
Receiver-enclaves (REs) send back an echo-message which they store along
with the counter value in the protected memory.  Once the SE receives
echo-messages from the quorum (q) it starts a second round.  Upon
receiving back the echo, each RE verifies that the received counter value
matches the one it keeps in memory and replies with a (N)ACK.  After
receiving q ACKs, the enclave seals its own state together with the
counter value to the persistent storage."

Implementation notes:

* Every node hosts a :class:`CounterReplica` (a counter enclave).  The
  writing node's own replica participates locally (no network hop).
* Stabilization requests for the same log are *batched*: while a round
  is in flight, later requests raise the round's high-water mark, so a
  burst of transactions shares one protocol execution — this is what
  keeps the ~2 ms ROTE latency off the throughput path.
* Replica processing is charged ~``rote_latency_mean / 2`` per round so
  the end-to-end stabilization latency reproduces ROTE's measured ~2 ms.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional

from ..errors import FreshnessError
from ..net.message import MsgType, TxMessage
from ..net.secure_rpc import SecureRpc
from ..sim.core import Event
from ..sim.rng import SeededRng
from ..sim.sync import Gate
from ..storage.disk import Disk
from ..storage.format import Reader, Writer
from ..tee.runtime import NodeRuntime
from ..tee.sgx import SealingKey

__all__ = ["CounterReplica", "CounterClient", "encode_counter_msg"]

Gen = Generator[Event, Any, Any]


def encode_counter_msg(log_name: str, value: int) -> bytes:
    return Writer().blob(log_name.encode()).u64(value).getvalue()


def decode_counter_msg(data: bytes):
    reader = Reader(data)
    return reader.blob().decode(), reader.u64()


class CounterReplica:
    """The counter enclave running on one protection-group member."""

    SEALED_FILE = "counter.sealed"

    def __init__(
        self,
        runtime: NodeRuntime,
        rpc: SecureRpc,
        disk: Disk,
        sealing_key: SealingKey,
        node_name: str,
        rng: Optional[SeededRng] = None,
    ):
        self.runtime = runtime
        self.rpc = rpc
        self.disk = disk
        self.sealing_key = sealing_key
        self.node_name = node_name
        self.rng = rng or SeededRng(0, node_name, "counter-replica")
        self.tracer = runtime.tracer
        #: tentative (echoed) and confirmed counter values per log.
        self.echoed: Dict[str, int] = {}
        self.confirmed: Dict[str, int] = {}
        self.updates_processed = 0
        rpc.register(MsgType.COUNTER_UPDATE, self._on_update)
        rpc.register(MsgType.COUNTER_CONFIRM, self._on_confirm)
        rpc.register(MsgType.RECOVERY_QUERY, self._on_read)
        self._load_sealed_state()

    # -- persistence --------------------------------------------------------
    def _sealed_path(self) -> str:
        return "%s/%s" % (self.node_name, self.SEALED_FILE)

    def _load_sealed_state(self) -> None:
        if not self.disk.exists(self._sealed_path()):
            return
        plain = self.sealing_key.unseal(self.disk.read(self._sealed_path()))
        reader = Reader(plain)
        count = reader.u32()
        for _ in range(count):
            log_name = reader.blob().decode()
            value = reader.u64()
            self.confirmed[log_name] = value
        self.echoed.update(self.confirmed)

    def seal_state(self) -> Gen:
        """Seal the confirmed counters to untrusted persistent storage."""
        writer = Writer().u32(len(self.confirmed))
        for log_name, value in sorted(self.confirmed.items()):
            writer.blob(log_name.encode()).u64(value)
        sealed = self.sealing_key.seal(writer.getvalue())
        self.disk.write(self._sealed_path(), sealed)
        yield from self.runtime.ssd_write(len(sealed))

    # -- protocol handlers -----------------------------------------------------
    def _processing_delay(self) -> float:
        mean = self.runtime.costs.rote_latency_mean / 2.0
        jitter = self.runtime.costs.rote_latency_jitter / 2.0
        return max(0.0, self.rng.gauss(mean, jitter))

    def _on_update(self, message: TxMessage, src: str) -> Gen:
        """Round 1: store the tentative value, reply with an echo."""
        yield self.runtime.sim.timeout(self._processing_delay())
        log_name, value = decode_counter_msg(message.body)
        self.updates_processed += 1
        if value > self.echoed.get(log_name, 0):
            self.echoed[log_name] = value
        return TxMessage(
            MsgType.ACK,
            message.node_id,
            message.txn_id,
            message.op_id,
            encode_counter_msg(log_name, self.echoed[log_name]),
        )

    def _on_confirm(self, message: TxMessage, src: str) -> Gen:
        """Round 2: verify the value matches the stored echo, then ACK."""
        yield self.runtime.sim.timeout(self._processing_delay())
        log_name, value = decode_counter_msg(message.body)
        if self.echoed.get(log_name, 0) < value:
            # We never echoed this value: NACK (Byzantine-suspicious SE).
            return TxMessage(
                MsgType.FAIL, message.node_id, message.txn_id, message.op_id
            )
        if value > self.confirmed.get(log_name, 0):
            self.confirmed[log_name] = value
            self.tracer.event(
                "counter", "confirm", node=self.node_name,
                replica=self.node_name, log=log_name, value=value,
            )
            yield from self.seal_state()
        return TxMessage(
            MsgType.ACK, message.node_id, message.txn_id, message.op_id
        )

    def _on_read(self, message: TxMessage, src: str) -> Gen:
        """Recovery: report the freshest value this replica knows."""
        yield from self.runtime.op_overhead()
        log_name, _ = decode_counter_msg(message.body)
        value = self.confirmed.get(log_name, 0)
        return TxMessage(
            MsgType.RECOVERY_REPLY,
            message.node_id,
            message.txn_id,
            message.op_id,
            encode_counter_msg(log_name, value),
        )

    # -- local fast path (the SE's own replica) -----------------------------------
    def local_echo(self, log_name: str, value: int) -> None:
        if value > self.echoed.get(log_name, 0):
            self.echoed[log_name] = value

    def local_confirm(self, log_name: str, value: int) -> Gen:
        if value > self.confirmed.get(log_name, 0):
            self.confirmed[log_name] = value
            self.tracer.event(
                "counter", "confirm", node=self.node_name,
                replica=self.node_name, log=log_name, value=value,
            )
            yield from self.seal_state()


class CounterClient:
    """The sender-enclave side: stabilizes log counters via the group."""

    def __init__(
        self,
        runtime: NodeRuntime,
        rpc: SecureRpc,
        replica: CounterReplica,
        peers: List[str],
        quorum: int,
        node_numeric_id: int,
        epoch: int = 0,
    ):
        self.runtime = runtime
        self.rpc = rpc
        self.replica = replica
        self.peers = peers  # other group members' addresses
        self.quorum = quorum
        self.node_numeric_id = node_numeric_id
        self.tracer = runtime.tracer
        #: boot epoch: distinguishes operation ids across restarts so the
        #: peers' replay guards do not reject a recovered node's traffic.
        self.epoch = epoch
        #: how long one round waits for stragglers beyond the quorum; a
        #: crashed group member must not wedge the protocol (§VI: "any
        #: faults ... can only affect availability", and only below q).
        self.round_timeout = 0.05
        #: backoff between retries when the quorum is unreachable.
        self.retry_backoff = 0.1
        self.max_retries = 100
        self._gates: Dict[str, Gate] = {}
        self._pending_target: Dict[str, int] = {}
        self._round_active: Dict[str, bool] = {}
        self._op_seq = 0
        self.rounds_executed = 0

    def _gate(self, log_name: str) -> Gate:
        if log_name not in self._gates:
            self._gates[log_name] = Gate(self.runtime.sim)
        return self._gates[log_name]

    def stable_value(self, log_name: str) -> int:
        """The highest value known stable (locally observed)."""
        return self._gate(log_name).value

    def _next_op(self) -> int:
        self._op_seq += 1
        return self._op_seq

    # -- stabilization ----------------------------------------------------------
    def stabilize(self, log_name: str, value: int) -> Gen:
        """Block until ``log_name``'s counter is stable at >= ``value``."""
        gate = self._gate(log_name)
        if gate.value >= value:
            return
        self._pending_target[log_name] = max(
            self._pending_target.get(log_name, 0), value
        )
        if not self._round_active.get(log_name):
            self._round_active[log_name] = True
            self.runtime.sim.process(
                self._drive_rounds(log_name), name="counter-se/%s" % log_name
            )
        yield gate.wait_for(value)

    def _drive_rounds(self, log_name: str) -> Gen:
        gate = self._gate(log_name)
        retries = 0
        try:
            while self._pending_target.get(log_name, 0) > gate.value:
                target = self._pending_target[log_name]
                try:
                    yield from self._run_protocol(log_name, target)
                except FreshnessError:
                    retries += 1
                    if retries > self.max_retries:
                        raise
                    yield self.runtime.sim.timeout(self.retry_backoff)
                    continue
                retries = 0
                gate.advance_to(target)
                # The monitor learns stability from this event alone —
                # it fires only after a genuine quorum confirm.
                self.tracer.event(
                    "stabilize", "advance", node=self.replica.node_name,
                    log=log_name, value=target,
                )
        finally:
            self._round_active[log_name] = False

    def _broadcast(self, msg_type: int, log_name: str, value: int) -> Gen:
        """Send one round to all peers; returns the number of ACKs.

        Waits for every reply up to ``round_timeout`` — a crashed peer
        must not wedge the round once the quorum has answered.
        """
        body = encode_counter_msg(log_name, value)
        events = [
            self.rpc.enqueue(
                peer,
                TxMessage(
                    msg_type, self.node_numeric_id, self.epoch, self._next_op(), body
                ),
                express=True,  # dedicated counter-service enclave thread
            )
            for peer in self.peers
        ]
        acks = 1  # the local replica always participates
        if events:
            yield self.runtime.sim.any_of(
                [
                    self.runtime.sim.all_of(events),
                    self.runtime.sim.timeout(self.round_timeout),
                ]
            )
            for event in events:
                if event.triggered and event.ok:
                    reply = event.value
                    if reply.msg_type == MsgType.ACK:
                        acks += 1
        return acks

    def _run_protocol(self, log_name: str, value: int) -> Gen:
        """One echo-broadcast execution stabilizing ``value``."""
        self.rounds_executed += 1
        # Round 1: update + echoes.
        self.replica.local_echo(log_name, value)
        acks = yield from self._broadcast(MsgType.COUNTER_UPDATE, log_name, value)
        if acks < self.quorum:
            raise FreshnessError(
                "counter group unavailable: %d/%d echoes for %s"
                % (acks, self.quorum, log_name)
            )
        # Round 2: confirmation.
        acks = yield from self._broadcast(MsgType.COUNTER_CONFIRM, log_name, value)
        if acks < self.quorum:
            raise FreshnessError(
                "counter group unavailable: %d/%d confirms for %s"
                % (acks, self.quorum, log_name)
            )
        # Seal own state with the stabilized value (end of the protocol).
        yield from self.replica.local_confirm(log_name, value)

    # -- recovery reads -------------------------------------------------------------
    def read_stable(self, log_name: str) -> Gen:
        """Quorum-read the freshest stable value for ``log_name``.

        Used at recovery: "only log entries with counter value [up to]
        the trusted service's value can be recovered".
        """
        body = encode_counter_msg(log_name, 0)
        events = [
            self.rpc.enqueue(
                peer,
                TxMessage(
                    MsgType.RECOVERY_QUERY,
                    self.node_numeric_id,
                    self.epoch,
                    self._next_op(),
                    body,
                ),
                express=True,
            )
            for peer in self.peers
        ]
        values = [self.replica.confirmed.get(log_name, 0)]
        if events:
            yield self.runtime.sim.any_of(
                [
                    self.runtime.sim.all_of(events),
                    self.runtime.sim.timeout(self.round_timeout),
                ]
            )
        for event in events:
            if event.triggered and event.ok:
                reply = event.value
                if reply.msg_type == MsgType.RECOVERY_REPLY:
                    _log, value = decode_counter_msg(reply.body)
                    values.append(value)
        if len(values) < self.quorum:
            raise FreshnessError("cannot reach counter quorum for recovery")
        freshest = max(values)
        gate = self._gate(log_name)
        if freshest > gate.value:
            gate.advance_to(freshest)
            self.tracer.event(
                "stabilize", "advance", node=self.replica.node_name,
                log=log_name, value=freshest,
            )
        return freshest
