"""Asynchronous trusted counter service (ROTE-style echo broadcast, §VI).

"TREATY's trusted counter service implements an echo broadcast protocol
with an extra confirmation message in the end.  A sender-enclave (SE)
sends the counter update to all enclaves of the protection group.
Receiver-enclaves (REs) send back an echo-message which they store along
with the counter value in the protected memory.  Once the SE receives
echo-messages from the quorum (q) it starts a second round.  Upon
receiving back the echo, each RE verifies that the received counter value
matches the one it keeps in memory and replies with a (N)ACK.  After
receiving q ACKs, the enclave seals its own state together with the
counter value to the persistent storage."

Implementation notes:

* Every node hosts a :class:`CounterReplica` (a counter enclave).  The
  writing node's own replica participates locally (no network hop).
* Protocol messages carry a *vector* of ``(log_name, value)`` targets,
  so one echo-broadcast round stabilizes entries of many logs at once
  (WAL batches and Clog decisions share a round) — the ROTE/LCM-style
  amortization the durability pipeline is built on.
* Stabilization requests are *batched*: while a round is in flight,
  later requests raise the pending high-water marks, so a burst of
  transactions shares one protocol execution — this is what keeps the
  ~2 ms ROTE latency off the throughput path.  With
  ``counter_vectoring`` on (the default) a single round driver serves
  every log; off, each log runs its own driver (the pre-pipeline
  baseline).
* Replica processing is charged ~``rote_latency_mean / 2`` per round so
  the end-to-end stabilization latency reproduces ROTE's measured ~2 ms.
  The charge is per *message*, not per target: a vectored round costs
  the same as a single-log round, which is exactly the amortization.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple

from ..errors import FreshnessError, NetworkError
from ..net.message import MsgType, TxMessage
from ..net.secure_rpc import SecureRpc
from ..sim.core import Event
from ..sim.rng import SeededRng
from ..sim.sync import Gate
from ..storage.disk import Disk
from ..storage.format import Reader, Writer
from ..tee.runtime import NodeRuntime
from ..tee.sgx import SealingKey

__all__ = [
    "CounterReplica",
    "CounterClient",
    "encode_counter_msg",
    "encode_counter_vector",
    "decode_counter_vector",
    "shard_of",
]

Gen = Generator[Event, Any, Any]

#: one stabilization target: a log and the counter value to protect.
Target = Tuple[str, int]

#: bucket edges for the ``stabilize.batch_size`` histogram (targets per
#: vectored round).
BATCH_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128)


def shard_of(log_name: str, num_shards: int) -> int:
    """Route a log to its counter group by name hash.

    The mapping must be deterministic and stable across restarts and
    recovery — it depends only on the log's (globally unique) name and
    the configured shard count, never on boot state.
    """
    if num_shards <= 1:
        return 0
    return zlib.crc32(log_name.encode()) % num_shards


def encode_counter_msg(log_name: str, value: int) -> bytes:
    """Single-target payload (kept for sealed state and compatibility)."""
    return Writer().blob(log_name.encode()).u64(value).getvalue()


def decode_counter_msg(data: bytes):
    reader = Reader(data)
    return reader.blob().decode(), reader.u64()


def encode_counter_vector(targets: Sequence[Target]) -> bytes:
    """Wire format of one protocol round: a vector of (log, value)."""
    writer = Writer().u32(len(targets))
    for log_name, value in targets:
        writer.blob(log_name.encode()).u64(value)
    return writer.getvalue()


def decode_counter_vector(data: bytes) -> List[Target]:
    reader = Reader(data)
    count = reader.u32()
    return [(reader.blob().decode(), reader.u64()) for _ in range(count)]


class CounterReplica:
    """The counter enclave running on one protection-group member."""

    SEALED_FILE = "counter.sealed"

    def __init__(
        self,
        runtime: NodeRuntime,
        rpc: SecureRpc,
        disk: Disk,
        sealing_key: SealingKey,
        node_name: str,
        rng: Optional[SeededRng] = None,
    ):
        self.runtime = runtime
        self.rpc = rpc
        self.disk = disk
        self.sealing_key = sealing_key
        self.node_name = node_name
        self.rng = rng or SeededRng(0, node_name, "counter-replica")
        self.tracer = runtime.tracer
        backend = runtime.config.rollback_backend
        #: async/lcm backends release waiters at echo quorum, so a
        #: recovery read must report the freshest *echoed* value too —
        #: an acked entry may be rollback-protected by echoes alone.
        #: Safe: targets are registered only after the entry is durable
        #: on the writer's disk, so an echoed value never exceeds an
        #: honest writer's on-disk state, and reporting it can only make
        #: the freshness check stricter.
        self.report_echoed = backend != "counter-sync"
        #: LCM mode: the echo *is* the commit — round 1 persists the
        #: value, there is no CONFIRM leg.
        self.echo_commit = backend == "lcm"
        #: tentative (echoed) and confirmed counter values per log.
        self.echoed: Dict[str, int] = {}
        self.confirmed: Dict[str, int] = {}
        self.updates_processed = 0
        rpc.register(MsgType.COUNTER_UPDATE, self._on_update)
        rpc.register(MsgType.COUNTER_CONFIRM, self._on_confirm)
        rpc.register(MsgType.RECOVERY_QUERY, self._on_read)
        self._load_sealed_state()

    # -- persistence --------------------------------------------------------
    def _sealed_path(self) -> str:
        return "%s/%s" % (self.node_name, self.SEALED_FILE)

    def _load_sealed_state(self) -> None:
        if not self.disk.exists(self._sealed_path()):
            return
        plain = self.sealing_key.unseal(self.disk.read(self._sealed_path()))
        reader = Reader(plain)
        count = reader.u32()
        for _ in range(count):
            log_name = reader.blob().decode()
            value = reader.u64()
            self.confirmed[log_name] = value
        self.echoed.update(self.confirmed)

    def seal_state(self) -> Gen:
        """Seal the confirmed counters to untrusted persistent storage."""
        writer = Writer().u32(len(self.confirmed))
        for log_name, value in sorted(self.confirmed.items()):
            writer.blob(log_name.encode()).u64(value)
        sealed = self.sealing_key.seal(writer.getvalue())
        self.disk.write(self._sealed_path(), sealed)
        yield from self.runtime.ssd_write(len(sealed))

    # -- protocol handlers -----------------------------------------------------
    def _processing_delay(self) -> float:
        mean = self.runtime.costs.rote_latency_mean / 2.0
        jitter = self.runtime.costs.rote_latency_jitter / 2.0
        return max(0.0, self.rng.gauss(mean, jitter))

    def _on_update(self, message: TxMessage, src: str) -> Gen:
        """Round 1: store the tentative values, reply with an echo.

        One processing delay covers the whole vector — the enclave
        transition and protected-memory update dominate, not the
        per-target bookkeeping.
        """
        yield self.runtime.sim.timeout(self._processing_delay())
        targets = decode_counter_vector(message.body)
        self.updates_processed += 1
        echoes = []
        for log_name, value in targets:
            if value > self.echoed.get(log_name, 0):
                self.echoed[log_name] = value
            echoes.append((log_name, self.echoed[log_name]))
        if self.echo_commit:
            # LCM mode: round 1 is the whole protocol.  Persist the
            # echoed values so rollback protection survives a full-group
            # restart, exactly as the CONFIRM leg's seal would.
            advanced = False
            for log_name, value in targets:
                if value > self.confirmed.get(log_name, 0):
                    self.confirmed[log_name] = value
                    advanced = True
                    self.tracer.event(
                        "counter", "confirm", node=self.node_name,
                        replica=self.node_name, log=log_name, value=value,
                    )
            if advanced:
                yield from self.seal_state()
        return TxMessage(
            MsgType.ACK,
            message.node_id,
            message.txn_id,
            message.op_id,
            encode_counter_vector(echoes),
        )

    def _on_confirm(self, message: TxMessage, src: str) -> Gen:
        """Round 2: verify every value matches a stored echo, then ACK.

        A single target we never echoed poisons the whole round (NACK) —
        a Byzantine-suspicious SE must not smuggle an unechoed value in
        next to legitimate ones.
        """
        yield self.runtime.sim.timeout(self._processing_delay())
        targets = decode_counter_vector(message.body)
        for log_name, value in targets:
            if self.echoed.get(log_name, 0) < value:
                return TxMessage(
                    MsgType.FAIL, message.node_id, message.txn_id, message.op_id
                )
        advanced = False
        for log_name, value in targets:
            if value > self.confirmed.get(log_name, 0):
                self.confirmed[log_name] = value
                advanced = True
                self.tracer.event(
                    "counter", "confirm", node=self.node_name,
                    replica=self.node_name, log=log_name, value=value,
                )
        if advanced:
            # One seal covers every confirmed target of the round.
            yield from self.seal_state()
        return TxMessage(
            MsgType.ACK, message.node_id, message.txn_id, message.op_id
        )

    def _on_read(self, message: TxMessage, src: str) -> Gen:
        """Recovery: report the freshest values this replica knows."""
        yield from self.runtime.op_overhead()
        queried = decode_counter_vector(message.body)
        if self.report_echoed:
            values = [
                (
                    log_name,
                    max(
                        self.echoed.get(log_name, 0),
                        self.confirmed.get(log_name, 0),
                    ),
                )
                for log_name, _ in queried
            ]
        else:
            values = [
                (log_name, self.confirmed.get(log_name, 0))
                for log_name, _ in queried
            ]
        return TxMessage(
            MsgType.RECOVERY_REPLY,
            message.node_id,
            message.txn_id,
            message.op_id,
            encode_counter_vector(values),
        )

    # -- local fast path (the SE's own replica) -----------------------------------
    def local_echo(self, targets: Sequence[Target]) -> None:
        for log_name, value in targets:
            if value > self.echoed.get(log_name, 0):
                self.echoed[log_name] = value

    def local_confirm(self, targets: Sequence[Target]) -> Gen:
        advanced = False
        for log_name, value in targets:
            if value > self.confirmed.get(log_name, 0):
                self.confirmed[log_name] = value
                advanced = True
                self.tracer.event(
                    "counter", "confirm", node=self.node_name,
                    replica=self.node_name, log=log_name, value=value,
                )
        if advanced:
            yield from self.seal_state()


class CounterClient:
    """The sender-enclave side: stabilizes log counters via the group.

    The client keeps one pending high-water mark per log and a round
    driver that snapshots *every* log's pending target into one vectored
    protocol execution.  Waiters block on per-log :class:`Gate`\\ s, so a
    round that stabilizes ``{wal: 7, clog: 3}`` wakes WAL and Clog
    waiters together.
    """

    def __init__(
        self,
        runtime: NodeRuntime,
        rpc: SecureRpc,
        replica: CounterReplica,
        peers: List[str],
        quorum: int,
        node_numeric_id: int,
        epoch: int = 0,
    ):
        self.runtime = runtime
        self.rpc = rpc
        self.replica = replica
        self.peers = peers  # other group members' addresses
        self.quorum = quorum
        self.node_numeric_id = node_numeric_id
        self.tracer = runtime.tracer
        #: boot epoch: distinguishes operation ids across restarts so the
        #: peers' replay guards do not reject a recovered node's traffic.
        self.epoch = epoch
        config = runtime.config
        self.round_timeout = config.counter_round_timeout
        self.retry_backoff = config.counter_retry_backoff
        self.max_retries = config.counter_max_retries
        #: one driver for all logs (vectored) vs one driver per log.
        self.vectoring = config.counter_vectoring
        #: independent counter groups, routed by log-name hash.  Each
        #: shard keeps its own pending marks, round driver and trace
        #: context, so disjoint logs stop serializing through one round.
        self.num_shards = max(1, config.counter_shards)
        self._gates: Dict[str, Gate] = {}
        self._pending_target: List[Dict[str, int]] = [
            {} for _ in range(self.num_shards)
        ]
        #: per-log driver flags (legacy mode only).
        self._round_active: Dict[str, bool] = {}
        #: per-shard driver flags (vectored mode only).
        self._driver_active = [False] * self.num_shards
        #: trace context of the first registrant since the last round —
        #: the round span attaches there, so a transaction's counter
        #: round joins its cross-node DAG (shared rounds are attributed
        #: to the registrant that triggered them).
        self._round_ctx: List[Optional[Tuple[Optional[str], int]]] = [
            None
        ] * self.num_shards
        self._op_seq = 0
        self.rounds_executed = 0
        runtime.metrics.probe(
            "counter.rounds_executed", lambda: self.rounds_executed
        )
        for shard in range(self.num_shards):
            runtime.metrics.probe(
                "counter.pending.%d" % shard,
                lambda s=shard: len(self._pending_target[s]),
            )
        self._batch_hist = runtime.metrics.histogram(
            "stabilize.batch_size", edges=BATCH_SIZE_BUCKETS
        )

    def _gate(self, log_name: str) -> Gate:
        if log_name not in self._gates:
            gate = Gate(self.runtime.sim)
            # A locally confirmed value is quorum-stable by construction
            # (the source only confirms after a quorum of echoes), so the
            # gate must never start below it.  This matters after a
            # restart: the replica reloads sealed confirmed values, and a
            # redriven round with a stale (lower) target would otherwise
            # re-advertise a stable view this node already surpassed.
            confirmed = self.replica.confirmed.get(log_name, 0)
            if confirmed > 0:
                gate.advance_to(confirmed)
            self._gates[log_name] = gate
        return self._gates[log_name]

    def stable_value(self, log_name: str) -> int:
        """The highest value known stable (locally observed)."""
        return self._gate(log_name).value

    def shard_of(self, log_name: str) -> int:
        """The counter group that serves ``log_name``."""
        return shard_of(log_name, self.num_shards)

    def _next_op(self) -> int:
        self._op_seq += 1
        return self._op_seq

    # -- stabilization ----------------------------------------------------------
    def _register(
        self, log_name: str, value: int, spawn_driver: bool = True
    ) -> int:
        """Raise the pending high-water mark; optionally ensure a driver.

        Returns the target's shard.  ``spawn_driver=False`` is the
        passive registration the async backends use: they run their own
        per-shard driver fibers and only need the mark recorded.
        """
        shard = self.shard_of(log_name)
        pending = self._pending_target[shard]
        pending[log_name] = max(pending.get(log_name, 0), value)
        if self.tracer.enabled and self._round_ctx[shard] is None:
            context = self.tracer.current_context()
            if context[0] is not None or context[1]:
                self._round_ctx[shard] = context
        if not spawn_driver:
            return shard
        if self.vectoring:
            if not self._driver_active[shard]:
                self._driver_active[shard] = True
                self.runtime.sim.process(
                    self._drive_vectored_rounds(shard),
                    name="counter-se/vector.%d" % shard,
                )
        elif not self._round_active.get(log_name):
            self._round_active[log_name] = True
            self.runtime.sim.process(
                self._drive_rounds(log_name), name="counter-se/%s" % log_name
            )
        return shard

    def stabilize(self, log_name: str, value: int) -> Gen:
        """Block until ``log_name``'s counter is stable at >= ``value``."""
        gate = self._gate(log_name)
        if gate.value >= value:
            return
        self._register(log_name, value)
        yield gate.wait_for(value)

    def stabilize_many(self, targets: Sequence[Target]) -> Gen:
        """Block until every ``(log, value)`` target is stable.

        One request registers all targets before the round driver's next
        snapshot, so they share a single echo-broadcast execution — this
        is what the group-commit leader calls to stabilize its batch's
        WAL counter alongside any pending Clog decisions.
        """
        waits = []
        for log_name, value in targets:
            gate = self._gate(log_name)
            if gate.value >= value:
                continue
            self._register(log_name, value)
            waits.append(gate.wait_for(value))
        if waits:
            yield self.runtime.sim.all_of(waits)

    # -- round drivers ----------------------------------------------------------
    def _pending_snapshot(self, shard: int = 0) -> List[Target]:
        """Every log of ``shard`` whose pending target is not yet stable,
        sorted for deterministic wire payloads."""
        return sorted(
            (log_name, target)
            for log_name, target in self._pending_target[shard].items()
            if target > self._gate(log_name).value
        )

    def _advance(self, targets: Sequence[Target]) -> None:
        for log_name, value in targets:
            gate = self._gate(log_name)
            if value > gate.value:
                gate.advance_to(value)
                # The monitor learns stability from this event alone —
                # it fires only after a genuine quorum confirm.
                self.tracer.event(
                    "stabilize", "advance", node=self.replica.node_name,
                    log=log_name, value=value,
                )

    def _drive_vectored_rounds(self, shard: int = 0) -> Gen:
        """The unified driver: one round covers every pending log of the
        shard."""
        retries = 0
        try:
            while True:
                targets = self._pending_snapshot(shard)
                if not targets:
                    break
                try:
                    yield from self._run_protocol(targets, shard=shard)
                except FreshnessError:
                    retries += 1
                    if retries > self.max_retries:
                        raise
                    yield self.runtime.sim.timeout(self.retry_backoff)
                    continue
                retries = 0
                self._advance(targets)
        finally:
            self._driver_active[shard] = False

    def _drive_rounds(self, log_name: str) -> Gen:
        """Legacy per-log driver (``counter_vectoring=False`` baseline)."""
        gate = self._gate(log_name)
        shard = self.shard_of(log_name)
        pending = self._pending_target[shard]
        retries = 0
        try:
            while pending.get(log_name, 0) > gate.value:
                target = pending[log_name]
                try:
                    yield from self._run_protocol(
                        [(log_name, target)], shard=shard
                    )
                except FreshnessError:
                    retries += 1
                    if retries > self.max_retries:
                        raise
                    yield self.runtime.sim.timeout(self.retry_backoff)
                    continue
                retries = 0
                self._advance([(log_name, target)])
        finally:
            self._round_active[log_name] = False

    def _broadcast(self, msg_type: int, targets: Sequence[Target]) -> Gen:
        """Send one round to all peers; returns the number of ACKs.

        Returns as soon as the *quorum* has answered (the local replica
        counts as one vote, so ``quorum - 1`` remote ACKs complete it):
        the round's latency is the fastest quorum-completing peer, not
        the slowest straggler.  Straggler echoes keep arriving in the
        background and only freshen replica state.  If the quorum is
        unreachable the wait falls back to every reply settling, bounded
        by ``round_timeout`` — a crashed peer must not wedge the round.
        """
        body = encode_counter_vector(targets)
        # One broadcast enqueues every peer in the same instant, so each
        # peer's echo message coalesces into the same transport batch as
        # concurrent 2PC traffic headed its way.  A crashed peer fails
        # its event immediately, which simply counts as a missing ACK.
        events = self.rpc.broadcast(
            [
                (
                    peer,
                    TxMessage(
                        msg_type, self.node_numeric_id, self.epoch,
                        self._next_op(), body,
                    ),
                )
                for peer in self.peers
            ],
            express=True,  # dedicated counter-service enclave thread
        )
        acks = 1  # the local replica always participates
        if events:
            yield self.runtime.sim.any_of(
                [
                    self.runtime.sim.quorum_of(
                        events,
                        max(0, self.quorum - acks),
                        accept=lambda reply: reply.msg_type == MsgType.ACK,
                    ),
                    self.runtime.sim.timeout(self.round_timeout),
                ]
            )
            for event in events:
                if event.triggered and event.ok:
                    reply = event.value
                    if reply.msg_type == MsgType.ACK:
                        acks += 1
        return acks

    def _run_protocol(
        self,
        targets: Sequence[Target],
        shard: int = 0,
        confirm: bool = True,
        release_at_echo: bool = False,
        background_confirm: bool = False,
    ) -> Gen:
        """One echo-broadcast execution stabilizing a target vector.

        ``release_at_echo`` advances the stable frontier as soon as the
        echo quorum is reached — the value is then held in a quorum's
        protected memory, which is the rollback-protection point the
        async backends ack on.  ``background_confirm`` detaches the
        CONFIRM leg into its own fiber so the caller (and the shard's
        round pipeline) is not serialized behind it; ``confirm=False``
        drops the leg entirely (LCM mode — the echo is the commit).
        """
        self.rounds_executed += 1
        self._batch_hist.observe(len(targets))
        # Attach the round to the context captured at registration time
        # (falling back to the driver fiber's inherited context), so the
        # UPDATE/CONFIRM fan-out below — and the replicas' handler spans
        # on the other side of the wire — join that transaction's DAG.
        context, self._round_ctx[shard] = self._round_ctx[shard], None
        if context is not None:
            span = self.tracer.span(
                "counter", "round", node=self.replica.node_name,
                trace=context[0], parent=context[1], targets=len(targets),
            )
        else:
            span = self.tracer.span(
                "counter", "round", node=self.replica.node_name,
                targets=len(targets),
            )
        error = None
        try:
            # Round 1: update + echoes.
            self.replica.local_echo(targets)
            acks = yield from self._broadcast(MsgType.COUNTER_UPDATE, targets)
            if acks < self.quorum:
                raise FreshnessError(
                    "counter group unavailable: %d/%d echoes for %d targets"
                    % (acks, self.quorum, len(targets))
                )
            if release_at_echo:
                # Echo quorum: the values sit in a quorum's protected
                # memory — rollback-protected for fail-stop + rollback
                # adversaries (recovery reads report echoed values under
                # these backends).  Waiters release here.
                self._advance(targets)
            if not confirm:
                # LCM mode: seal our own echoed state and stop.
                yield from self.replica.local_confirm(targets)
            elif background_confirm:
                self.runtime.sim.process(
                    self._confirm_leg(targets),
                    name="counter-confirm/%d" % shard,
                )
            else:
                yield from self._confirm_leg(targets, strict=True)
        except FreshnessError:
            error = "freshness"
            raise
        except NetworkError:
            error = "network"
            raise
        finally:
            # try/finally: a NetworkError out of a zombie driver's
            # broadcast (NIC detached mid-round) must not leak the span.
            if error:
                span.close(error=error)
            else:
                span.close()

    def _confirm_leg(self, targets: Sequence[Target], strict: bool = False) -> Gen:
        """Round 2: confirmation + local seal.

        ``strict`` raises on a missing quorum (the synchronous protocol);
        otherwise a failed background confirm is dropped — the echo
        quorum already rollback-protects the values, the CONFIRM only
        freshens the replicas' sealed state.
        """
        try:
            acks = yield from self._broadcast(MsgType.COUNTER_CONFIRM, targets)
        except NetworkError:
            if strict:
                raise
            return
        if acks < self.quorum:
            if strict:
                raise FreshnessError(
                    "counter group unavailable: %d/%d confirms for %d targets"
                    % (acks, self.quorum, len(targets))
                )
            return
        # Seal own state with the stabilized values (end of protocol).
        yield from self.replica.local_confirm(targets)

    def drive_until_stable(
        self,
        targets: Sequence[Target],
        shard: int = 0,
        confirm: bool = True,
        release_at_echo: bool = False,
        background_confirm: bool = False,
    ) -> Gen:
        """Run protocol rounds (with freshness retries) until every
        target is stable — the synchronous fallback the async backends
        use when a coverage promise outlives its lease."""
        retries = 0
        while True:
            remaining = [
                (log_name, value)
                for log_name, value in targets
                if value > self._gate(log_name).value
            ]
            if not remaining:
                return
            try:
                yield from self._run_protocol(
                    remaining, shard=shard, confirm=confirm,
                    release_at_echo=release_at_echo,
                    background_confirm=background_confirm,
                )
            except FreshnessError:
                retries += 1
                if retries > self.max_retries:
                    raise
                yield self.runtime.sim.timeout(self.retry_backoff)
                continue
            retries = 0
            self._advance(remaining)

    # -- recovery reads -------------------------------------------------------------
    def read_stable_many(self, log_names: Sequence[str]) -> Gen:
        """Quorum-read the freshest stable values for many logs at once.

        Used at recovery: "only log entries with counter value [up to]
        the trusted service's value can be recovered".  One query round
        covers every live WAL and Clog instead of a round per log.
        Returns ``{log_name: value}``.
        """
        log_names = list(log_names)
        body = encode_counter_vector([(name, 0) for name in log_names])
        events = self.rpc.broadcast(
            [
                (
                    peer,
                    TxMessage(
                        MsgType.RECOVERY_QUERY,
                        self.node_numeric_id,
                        self.epoch,
                        self._next_op(),
                        body,
                    ),
                )
                for peer in self.peers
            ],
            express=True,
        )
        freshest = {
            name: self.replica.confirmed.get(name, 0) for name in log_names
        }
        responders = 1  # the local replica always answers
        if events:
            yield self.runtime.sim.any_of(
                [
                    self.runtime.sim.all_settled(events),
                    self.runtime.sim.timeout(self.round_timeout),
                ]
            )
        for event in events:
            if event.triggered and event.ok:
                reply = event.value
                if reply.msg_type == MsgType.RECOVERY_REPLY:
                    responders += 1
                    for log_name, value in decode_counter_vector(reply.body):
                        if value > freshest.get(log_name, 0):
                            freshest[log_name] = value
        if responders < self.quorum:
            raise FreshnessError("cannot reach counter quorum for recovery")
        self._advance(sorted(freshest.items()))
        return freshest

    def read_stable(self, log_name: str) -> Gen:
        """Quorum-read the freshest stable value for one log."""
        values = yield from self.read_stable_many([log_name])
        return values[log_name]
